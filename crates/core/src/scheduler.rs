//! The scheduler actor.
//!
//! §4.1.1: the scheduler coordinates the whole join — it keeps the working
//! and potential join-node lists, reacts to `memory full` messages by
//! recruiting the potential node with the largest available memory,
//! orchestrates splits (with the barrier-split-pointer discipline: one
//! split in flight at a time, so at most two hash functions are ever
//! active), runs the hybrid's reshuffling step, and synchronizes data
//! sources and join processes between the build and probe phases.
//!
//! Phase barriers are *counting* barriers: sources report how many chunks
//! they sent, nodes report how many they received and forwarded, and a
//! phase completes only when every chunk is accounted for and no node has
//! unhoused (pending) tuples — robust on both the simulated and threaded
//! backends, where cross-sender message ordering is not guaranteed.

use crate::config::{Algorithm, JoinConfig, SplitPolicy};
use crate::msg::{Msg, NodeReport};
use crate::report::{JoinReport, TimelineEvent, TimelineKind};
use crate::routing::{HotKeyOverlay, RoutingTable};
use crate::topology::Topology;
use ehj_cluster::SchedulerBook;
use ehj_hash::{skew_aware_partition, BucketMap, HashRange, RangeMap, ReplicaMap, SpaceSaving};
use ehj_metrics::registry::names;
use ehj_metrics::{
    CommCounters, FaultField, Gauge, MetricsHandle, Phase, PhaseTimes, TraceKind, Tracer,
};
use ehj_sim::{Actor, ActorId, Context, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::Mutex;

/// Delay between barrier re-polls while chunks are still in flight, on the
/// simulated backend — part of the modelled virtual-time observables, so it
/// must stay stable across releases.
const FLUSH_RETRY_DELAY: SimTime = SimTime::from_millis(1);

/// Barrier re-poll delay on wall-clock backends. There the delay is pure
/// added latency on every query's critical path (each unsettled barrier
/// round eats a full poll period), so it is kept just long enough to let
/// in-flight acks drain.
const FLUSH_RETRY_DELAY_WALL: SimTime = SimTime::from_micros(20);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SchedPhase {
    Build,
    Reshuffle,
    Probe,
    Reporting,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct RangeBisectOp {
    started: SimTime,
    full_actor: ActorId,
    new_actor: ActorId,
}

/// State of the hot-key hand-off round (DESIGN §4i): after the build
/// barrier (and the hybrid's reshuffle, which *moves* tuples and so must
/// run first), every clean participant copies its tuples at the hot
/// positions to every other, so each ends up with the full hot build side.
struct HotKeyHandoff {
    /// The replicated hot positions, sorted ascending.
    hot: Vec<u32>,
    /// Clean (non-spilled) participants; the probe overlay's replica set.
    members: Vec<ActorId>,
    /// `HotKeyDone` replies required before the reshuffle barrier settles.
    expected: usize,
    done: usize,
}

/// The scheduler's registry instruments (no-ops until attached).
struct SchedMetrics {
    /// Number of positions promoted to the hot set at install time.
    sketch_topk: Gauge,
    /// Replica-set / probe fan-out sizes observed at install and probe.
    hotkey_fanout: ehj_metrics::Histogram,
}

impl SchedMetrics {
    fn new(handle: &MetricsHandle) -> Self {
        Self {
            sketch_topk: handle.gauge(names::SCHED_SKETCH_TOPK),
            hotkey_fanout: handle.histogram(names::SCHED_HOTKEY_FANOUT),
        }
    }
}

struct Group {
    /// In-memory replica-set members participating in the reshuffle.
    members: Vec<ActorId>,
    /// Members that spilled to disk: excluded from redistribution (their
    /// tuples are in spill files) but kept as probe-broadcast targets.
    spilled_members: Vec<ActorId>,
    range: HashRange,
    hist: Vec<u64>,
    replies: usize,
    assignments: Vec<(HashRange, ActorId)>,
    done: usize,
}

/// The scheduler.
pub struct Scheduler {
    cfg: Arc<JoinConfig>,
    topo: Topology,
    book: SchedulerBook,
    routing: RoutingTable,
    version: u64,
    phase: SchedPhase,
    // per-phase source accounting
    sources_done: usize,
    src_sent_chunks: u64,
    src_comm: CommCounters,
    // expansion machinery
    overflow_queue: VecDeque<ActorId>,
    /// Nodes that went out of core: their buckets can no longer be split
    /// (the data lives in spill files), so the split pointer stops there.
    spilled_actors: std::collections::HashSet<ActorId>,
    /// Linear-pointer splits in flight, keyed by the old bucket. The paper's
    /// barrier split pointer allows concurrent splits *within* one hashing
    /// level (still only two hash functions active) but a new level cannot
    /// begin until every split of the previous round reported done.
    lp_inflight: std::collections::HashMap<u32, SimTime>,
    rb_op: Option<RangeBisectOp>,
    expansions: u64,
    split_time: SimTime,
    // flush rounds
    epoch: u64,
    flush_in_progress: bool,
    barrier_dirty: bool,
    acks: usize,
    acks_expected: usize,
    acks_recv: u64,
    acks_fwd: u64,
    acks_pending: u64,
    // reshuffle
    groups: Vec<Group>,
    // hot-key routing (DESIGN §4i)
    /// Latest cumulative sketch per source (replaced wholesale on every
    /// snapshot, so re-merging never double-counts).
    sketches: std::collections::HashMap<ActorId, SpaceSaving>,
    /// Whether the hot-key overlay has been installed this run (at most
    /// once: the hot set is frozen at install time).
    hotkey_installed: bool,
    hotkey_handoff: Option<HotKeyHandoff>,
    metrics: SchedMetrics,
    // timings
    build_done_at: SimTime,
    reshuffle_done_at: SimTime,
    timeline: Vec<TimelineEvent>,
    // final collection
    probe_routing: Option<RoutingTable>,
    node_reports: Vec<NodeReport>,
    reports_expected: usize,
    result: Arc<Mutex<Option<JoinReport>>>,
    tracer: Tracer,
}

impl Scheduler {
    /// Creates the scheduler. The final [`JoinReport`] is written into
    /// `result` just before the engine is stopped.
    #[must_use]
    pub fn new(
        cfg: Arc<JoinConfig>,
        topo: Topology,
        result: Arc<Mutex<Option<JoinReport>>>,
    ) -> Self {
        let book = SchedulerBook::new(&cfg.cluster, cfg.initial_nodes, cfg.selection_policy);
        let initial_actors: Vec<ActorId> =
            book.working().iter().map(|&n| topo.node_actor(n)).collect();
        let routing = match (cfg.algorithm, cfg.split_policy) {
            (Algorithm::Replicated | Algorithm::Hybrid, _) => {
                RoutingTable::Replica(ReplicaMap::partitioned(cfg.positions, &initial_actors))
            }
            (Algorithm::Split, SplitPolicy::LinearPointer) => {
                RoutingTable::Buckets(BucketMap::new(initial_actors, cfg.positions as u64))
            }
            (Algorithm::Split, SplitPolicy::RangeBisect) | (Algorithm::OutOfCore, _) => {
                RoutingTable::Disjoint(RangeMap::partitioned(cfg.positions, &initial_actors))
            }
        };
        let chunk = cfg.chunk_tuples as u64;
        Self {
            cfg,
            topo,
            book,
            routing,
            version: 1,
            phase: SchedPhase::Build,
            sources_done: 0,
            src_sent_chunks: 0,
            src_comm: CommCounters::new(chunk),
            overflow_queue: VecDeque::new(),
            spilled_actors: std::collections::HashSet::new(),
            lp_inflight: std::collections::HashMap::new(),
            rb_op: None,
            expansions: 0,
            split_time: SimTime::ZERO,
            epoch: 0,
            flush_in_progress: false,
            barrier_dirty: false,
            acks: 0,
            acks_expected: 0,
            acks_recv: 0,
            acks_fwd: 0,
            acks_pending: 0,
            groups: Vec::new(),
            sketches: std::collections::HashMap::new(),
            hotkey_installed: false,
            hotkey_handoff: None,
            metrics: SchedMetrics::new(&MetricsHandle::disabled()),
            build_done_at: SimTime::ZERO,
            reshuffle_done_at: SimTime::ZERO,
            timeline: Vec::new(),
            probe_routing: None,
            node_reports: Vec::new(),
            reports_expected: 0,
            result,
            tracer: Tracer::off(),
        }
    }

    /// Attaches a tracer; events are emitted through it from then on.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches registry instruments (hot-set size, fan-out histogram).
    #[must_use]
    pub fn with_metrics(mut self, handle: &MetricsHandle) -> Self {
        self.metrics = SchedMetrics::new(handle);
        self
    }

    fn record(&mut self, ctx: &dyn Context<Msg>, kind: TimelineKind) {
        self.timeline.push(TimelineEvent {
            at_secs: ctx.now().as_secs_f64(),
            kind,
        });
    }

    /// Emits a structured trace event attributed to the scheduler itself.
    fn trace(&self, ctx: &dyn Context<Msg>, kind: TraceKind) {
        self.tracer
            .emit(ctx.now().as_nanos(), ctx.me(), self.data_phase(), kind);
    }

    /// Emits a structured trace event attributed to a specific actor
    /// (events that describe one node's state, like `NodeFull`).
    fn trace_at(&self, ctx: &dyn Context<Msg>, node: ActorId, kind: TraceKind) {
        self.tracer
            .emit(ctx.now().as_nanos(), node, self.data_phase(), kind);
    }

    fn active_actors(&self) -> Vec<ActorId> {
        self.book
            .all_active()
            .into_iter()
            .map(|n| self.topo.node_actor(n))
            .collect()
    }

    fn data_phase(&self) -> Phase {
        match self.phase {
            SchedPhase::Build => Phase::Build,
            SchedPhase::Reshuffle => Phase::Reshuffle,
            _ => Phase::Probe,
        }
    }

    fn broadcast_routing(&mut self, ctx: &mut dyn Context<Msg>) {
        self.version += 1;
        let update = |routing: RoutingTable, version: u64| Msg::RoutingUpdate { routing, version };
        for &s in &self.topo.sources {
            ctx.send(s, update(self.routing.clone(), self.version));
        }
        for a in self.active_actors() {
            ctx.send(a, update(self.routing.clone(), self.version));
        }
    }

    // ---- expansion ----

    fn handle_memory_full(&mut self, ctx: &mut dyn Context<Msg>, from: ActorId) {
        // A full node under a skewed stream is the overlay's cue: install
        // it (if the sketches justify one) before recruiting, so the hot
        // keys stop concentrating on the reporter while relief is staged.
        self.maybe_install_overlay(ctx);
        if self.cfg.algorithm == Algorithm::OutOfCore {
            return; // The baseline never expands; nodes spill on their own.
        }
        self.barrier_dirty = true;
        if !self.overflow_queue.contains(&from) {
            self.overflow_queue.push_back(from);
        }
        self.process_overflows(ctx);
    }

    // ---- hot-key routing (DESIGN §4i) ----

    /// Accepts a source's cumulative sketch snapshot. Snapshots replace
    /// the source's previous slot wholesale, so the merged view never
    /// double-counts a tuple.
    fn handle_sketch_update(
        &mut self,
        ctx: &mut dyn Context<Msg>,
        from: ActorId,
        sketch: SpaceSaving,
    ) {
        if !self.cfg.hot_keys.enabled {
            return;
        }
        let cap = self.cfg.hot_keys.sketch_capacity as u64;
        if sketch.len() as u64 > cap {
            self.protocol_fault(ctx, FaultField::SketchSize, sketch.len() as u64, cap);
            return;
        }
        self.sketches.insert(from, sketch);
        self.maybe_install_overlay(ctx);
    }

    /// Installs the hot-key overlay when the merged sketches show a key
    /// hot enough to be worth replicating. At most once per run, and only
    /// during the build phase (the hand-off that makes the replica sets
    /// consistent runs at the build/reshuffle barrier).
    fn maybe_install_overlay(&mut self, ctx: &mut dyn Context<Msg>) {
        let knobs = self.cfg.hot_keys;
        if !knobs.enabled || self.hotkey_installed || self.phase != SchedPhase::Build {
            return;
        }
        // Merge in source-id order: the min-count filler makes the merge
        // order-sensitive on tied counters, and hash-map iteration order
        // would leak nondeterminism into the promoted hot set.
        let mut by_source: Vec<(&ActorId, &SpaceSaving)> = self.sketches.iter().collect();
        by_source.sort_unstable_by_key(|&(id, _)| id);
        let mut merged: Option<SpaceSaving> = None;
        for (_, sk) in by_source {
            match merged.as_mut() {
                Some(m) => m.merge(sk),
                None => merged = Some(sk.clone()),
            }
        }
        let Some(merged) = merged else { return };
        if merged.total() < knobs.min_total {
            return;
        }
        // Promote the top keys whose *guaranteed* count (estimate minus
        // over-count error) clears the share threshold — the conservative
        // side of the space-saving bounds, so a uniform stream cannot
        // promote anything by noise.
        let threshold = (knobs.hot_fraction * merged.total() as f64).ceil() as u64;
        let mut hot: Vec<u32> = merged
            .top_k()
            .into_iter()
            .take(knobs.max_hot)
            .filter(|&(key, count, err)| {
                key < u64::from(self.cfg.positions) && count - err > threshold
            })
            .map(|(key, _, _)| key as u32)
            .collect();
        if hot.is_empty() {
            return;
        }
        hot.sort_unstable();
        hot.dedup();
        let spilled = &self.spilled_actors;
        let replicas: Vec<ActorId> = self
            .active_actors()
            .into_iter()
            .filter(|a| !spilled.contains(a))
            .collect();
        if replicas.is_empty() {
            return;
        }
        self.hotkey_installed = true;
        self.metrics.sketch_topk.add(hot.len() as i64);
        self.metrics.hotkey_fanout.record(replicas.len() as u64);
        self.record(ctx, TimelineKind::HotKeysInstalled(hot.len() as u32));
        self.trace(
            ctx,
            TraceKind::HotKeysInstalled {
                hot: hot.len() as u64,
                replicas: replicas.len() as u64,
            },
        );
        let inner = self.routing.clone();
        self.routing = RoutingTable::HotKeys {
            overlay: HotKeyOverlay {
                hot,
                replicas,
                extra: Vec::new(),
            },
            inner: Box::new(inner),
        };
        // Routing changed mid-build: pendings re-route, chunks may still
        // move — the barrier must not settle on pre-install flush counts.
        self.barrier_dirty = true;
        self.broadcast_routing(ctx);
    }

    /// Starts the hot-key hand-off round, if one is due and has not run:
    /// every clean participant copies its hot-position tuples to every
    /// other. Returns true when replies are outstanding (the caller stays
    /// in the reshuffle phase until the barrier settles again).
    fn start_hotkey_handoff(&mut self, ctx: &mut dyn Context<Msg>) -> bool {
        if self.hotkey_handoff.is_some() {
            return false; // already ran
        }
        let Some(overlay) = self.routing.overlay() else {
            return false;
        };
        let hot = overlay.hot.clone();
        let spilled = &self.spilled_actors;
        let members: Vec<ActorId> = self
            .active_actors()
            .into_iter()
            .filter(|a| !spilled.contains(a))
            .collect();
        if members.len() < 2 {
            // A lone clean member already holds every hot tuple (and with
            // none, the probe overlay is dropped): record a completed
            // hand-off so start_probe still sees the hot set.
            self.hotkey_handoff = Some(HotKeyHandoff {
                hot,
                members,
                expected: 0,
                done: 0,
            });
            return false;
        }
        // The hand-off traffic rides the reshuffle lane; its flush rounds
        // count reshuffle-phase chunks only.
        self.sources_done = 0;
        self.src_sent_chunks = 0;
        let expected = members.len();
        for &m in &members {
            ctx.send(
                m,
                Msg::HotKeyPlan {
                    positions: hot.clone(),
                    members: members.clone(),
                },
            );
        }
        self.hotkey_handoff = Some(HotKeyHandoff {
            hot,
            members,
            expected,
            done: 0,
        });
        true
    }

    /// A node's pending queue drained before its queued report was
    /// processed: drop the stale report so the pointer is not advanced (and
    /// a node not recruited) for nothing.
    fn handle_relieved(&mut self, from: ActorId) {
        self.overflow_queue.retain(|&a| a != from);
    }

    fn process_overflows(&mut self, ctx: &mut dyn Context<Msg>) {
        loop {
            if self.overflow_queue.is_empty() {
                return;
            }
            match self.cfg.algorithm {
                Algorithm::Split if self.cfg.split_policy == SplitPolicy::LinearPointer => {
                    // Barrier split pointer: the next split may proceed
                    // concurrently unless it would open a new hashing level
                    // while splits of the current round are still in flight.
                    if let RoutingTable::Buckets(m) = &self.routing {
                        let starts_new_round = m.next_split_starts_round();
                        if starts_new_round && !self.lp_inflight.is_empty() {
                            return; // resume on the next SplitDone
                        }
                    }
                }
                Algorithm::Split if self.rb_op.is_some() => {
                    return; // range-bisect splits stay serialized
                }
                _ => {}
            }
            let Some(full_actor) = self.overflow_queue.pop_front() else {
                return;
            };
            self.process_one_overflow(ctx, full_actor);
        }
    }

    fn process_one_overflow(&mut self, ctx: &mut dyn Context<Msg>, full_actor: ActorId) {
        match self.cfg.algorithm {
            Algorithm::Replicated | Algorithm::Hybrid => {
                // Skip stale reports: the node must still be the active
                // replica of some range.
                let is_active = match self.routing.inner() {
                    RoutingTable::Replica(m) => {
                        m.entries().iter().any(|e| e.active() == full_actor)
                    }
                    _ => unreachable!("replication algorithms use replica routing"),
                };
                if !is_active {
                    return;
                }
                let Some(new_node) = self.book.recruit() else {
                    self.spilled_actors.insert(full_actor);
                    self.trace_at(ctx, full_actor, TraceKind::PoolExhausted);
                    ctx.send(full_actor, Msg::NoMoreNodes);
                    return;
                };
                let new_actor = self.topo.node_actor(new_node);
                self.expansions += 1;
                self.record(ctx, TimelineKind::Recruited(new_node.0));
                self.trace(ctx, TraceKind::Recruited { node: new_node.0 });
                let RoutingTable::Replica(m) = self.routing.inner_mut() else {
                    unreachable!();
                };
                let range = m.replicate(full_actor, new_actor);
                self.trace_at(
                    ctx,
                    new_actor,
                    TraceKind::Replicated {
                        start: range.start,
                        end: range.end,
                    },
                );
                // The full node stops receiving: bookkeeping per §4.1.2.
                if let Some(full_node) = self.topo.node_of_actor(full_actor) {
                    if self.book.working().contains(&full_node) {
                        self.book.mark_full(full_node);
                        self.trace_at(ctx, full_actor, TraceKind::NodeFull);
                    }
                }
                ctx.send(
                    new_actor,
                    Msg::Activate {
                        routing: self.routing.clone(),
                        version: self.version + 1,
                    },
                );
                self.broadcast_routing(ctx);
            }
            Algorithm::Split => match self.cfg.split_policy {
                SplitPolicy::LinearPointer => {
                    // The pointer bucket cannot split if its owner already
                    // went out of core (the bucket's contents are on disk).
                    // Expansion is over: the reporter must spill too.
                    let pointer_owner = match self.routing.inner() {
                        RoutingTable::Buckets(m) => m.owner_of_bucket(m.split_ptr()),
                        _ => unreachable!("linear-pointer split uses bucket routing"),
                    };
                    if self.spilled_actors.contains(&pointer_owner) {
                        self.spilled_actors.insert(full_actor);
                        self.trace_at(ctx, full_actor, TraceKind::PoolExhausted);
                        ctx.send(full_actor, Msg::NoMoreNodes);
                        return;
                    }
                    let Some(new_node) = self.book.recruit() else {
                        self.spilled_actors.insert(full_actor);
                        self.trace_at(ctx, full_actor, TraceKind::PoolExhausted);
                        ctx.send(full_actor, Msg::NoMoreNodes);
                        return;
                    };
                    let new_actor = self.topo.node_actor(new_node);
                    self.expansions += 1;
                    self.record(ctx, TimelineKind::Recruited(new_node.0));
                    self.trace(ctx, TraceKind::Recruited { node: new_node.0 });
                    let (step, old_owner, pointer) = {
                        let RoutingTable::Buckets(m) = self.routing.inner_mut() else {
                            unreachable!("linear-pointer split uses bucket routing");
                        };
                        let (step, old_owner) = m.split(new_actor);
                        (step, old_owner, m.split_ptr())
                    };
                    self.trace(
                        ctx,
                        TraceKind::SplitIssued {
                            bucket: step.old,
                            from: old_owner,
                            to: new_actor,
                        },
                    );
                    self.trace(ctx, TraceKind::SplitPointerAdvance { pointer });
                    ctx.send(
                        new_actor,
                        Msg::Activate {
                            routing: self.routing.clone(),
                            version: self.version + 1,
                        },
                    );
                    self.broadcast_routing(ctx);
                    ctx.send(
                        old_owner,
                        Msg::SplitRequest {
                            step,
                            new_node: new_actor,
                        },
                    );
                    self.lp_inflight.insert(step.old, ctx.now());
                }
                SplitPolicy::RangeBisect => {
                    let RoutingTable::Disjoint(m) = self.routing.inner() else {
                        unreachable!("range-bisect split uses disjoint routing");
                    };
                    let Some(range) = m.range_of_owner(full_actor) else {
                        return; // stale report
                    };
                    let Some(new_node) = self.book.recruit() else {
                        self.spilled_actors.insert(full_actor);
                        self.trace_at(ctx, full_actor, TraceKind::PoolExhausted);
                        ctx.send(full_actor, Msg::NoMoreNodes);
                        return;
                    };
                    let new_actor = self.topo.node_actor(new_node);
                    self.record(ctx, TimelineKind::Recruited(new_node.0));
                    self.trace(ctx, TraceKind::Recruited { node: new_node.0 });
                    ctx.send(
                        new_actor,
                        Msg::Activate {
                            routing: self.routing.clone(),
                            version: self.version,
                        },
                    );
                    ctx.send(
                        full_actor,
                        Msg::RangeSplitRequest {
                            new_node: new_actor,
                            range,
                        },
                    );
                    self.rb_op = Some(RangeBisectOp {
                        started: ctx.now(),
                        full_actor,
                        new_actor,
                    });
                }
            },
            Algorithm::OutOfCore => unreachable!("handled in handle_memory_full"),
        }
    }

    fn handle_split_done(&mut self, ctx: &mut dyn Context<Msg>, old_bucket: u32, moved: u64) {
        let Some(started) = self.lp_inflight.remove(&old_bucket) else {
            return;
        };
        self.split_time += ctx.now().saturating_sub(started);
        self.record(ctx, TimelineKind::SplitDone(old_bucket));
        self.trace(
            ctx,
            TraceKind::SplitDone {
                bucket: old_bucket,
                moved,
            },
        );
        self.process_overflows(ctx);
        self.maybe_start_flush(ctx);
    }

    fn handle_range_split_done(
        &mut self,
        ctx: &mut dyn Context<Msg>,
        cut: u32,
        moved: u64,
        ok: bool,
    ) {
        let Some(RangeBisectOp {
            started,
            full_actor,
            new_actor,
        }) = self.rb_op
        else {
            return;
        };
        self.split_time += ctx.now().saturating_sub(started);
        self.rb_op = None;
        self.trace(ctx, TraceKind::RangeSplit { cut, moved, ok });
        if ok {
            self.record(ctx, TimelineKind::RangeSplit(cut));
            self.expansions += 1;
            let RoutingTable::Disjoint(m) = self.routing.inner_mut() else {
                unreachable!();
            };
            let range = m
                .range_of_owner(full_actor)
                .expect("owner still holds its range");
            m.replace_range(
                range,
                vec![
                    (HashRange::new(range.start, cut), full_actor),
                    (HashRange::new(cut, range.end), new_actor),
                ],
            );
            self.broadcast_routing(ctx);
        } else {
            if let Some(node) = self.topo.node_of_actor(new_actor) {
                self.book.return_to_potential(node);
            }
            self.spilled_actors.insert(full_actor);
            self.trace_at(ctx, full_actor, TraceKind::PoolExhausted);
            ctx.send(full_actor, Msg::NoMoreNodes);
        }
        self.process_overflows(ctx);
        self.maybe_start_flush(ctx);
    }

    // ---- phase barriers ----

    fn barrier_preconditions_met(&self) -> bool {
        let sources_needed = match self.phase {
            SchedPhase::Build | SchedPhase::Probe => self.topo.sources.len(),
            SchedPhase::Reshuffle => 0,
            _ => return false,
        };
        let reshuffle_ready = self.phase != SchedPhase::Reshuffle
            || self.groups.iter().all(|g| g.done == g.members.len());
        let handoff_ready = self
            .hotkey_handoff
            .as_ref()
            .is_none_or(|h| h.done >= h.expected);
        (self.sources_done >= sources_needed)
            && self.overflow_queue.is_empty()
            && self.lp_inflight.is_empty()
            && self.rb_op.is_none()
            && reshuffle_ready
            && handoff_ready
    }

    fn maybe_start_flush(&mut self, ctx: &mut dyn Context<Msg>) {
        if self.flush_in_progress || !self.barrier_preconditions_met() {
            return;
        }
        if !matches!(
            self.phase,
            SchedPhase::Build | SchedPhase::Reshuffle | SchedPhase::Probe
        ) {
            return;
        }
        self.epoch += 1;
        self.flush_in_progress = true;
        self.barrier_dirty = false;
        self.acks = 0;
        self.acks_recv = 0;
        self.acks_fwd = 0;
        self.acks_pending = 0;
        let actors = self.active_actors();
        self.acks_expected = actors.len();
        let phase = self.data_phase();
        for a in actors {
            ctx.send(
                a,
                Msg::FlushQuery {
                    epoch: self.epoch,
                    phase,
                },
            );
        }
    }

    fn handle_flush_ack(
        &mut self,
        ctx: &mut dyn Context<Msg>,
        epoch: u64,
        recv: u64,
        fwd: u64,
        pending: u64,
    ) {
        if epoch != self.epoch || !self.flush_in_progress {
            return;
        }
        self.acks += 1;
        self.acks_recv += recv;
        self.acks_fwd += fwd;
        self.acks_pending += pending;
        if self.acks < self.acks_expected {
            return;
        }
        self.flush_in_progress = false;
        let balanced = self.acks_recv == self.src_sent_chunks + self.acks_fwd;
        let settled = !self.barrier_dirty
            && self.acks_pending == 0
            && balanced
            && self.barrier_preconditions_met();
        if settled {
            self.advance_phase(ctx);
        } else {
            let delay = if ctx.virtual_time() {
                FLUSH_RETRY_DELAY
            } else {
                FLUSH_RETRY_DELAY_WALL
            };
            ctx.schedule(delay, Msg::RetryFlush);
        }
    }

    // ---- phase transitions ----

    fn advance_phase(&mut self, ctx: &mut dyn Context<Msg>) {
        match self.phase {
            SchedPhase::Build => {
                self.build_done_at = ctx.now();
                self.record(ctx, TimelineKind::BuildDone);
                self.trace(ctx, TraceKind::PhaseDone);
                if self.cfg.algorithm == Algorithm::Hybrid && self.start_reshuffle(ctx) {
                    self.phase = SchedPhase::Reshuffle;
                } else if self.start_hotkey_handoff(ctx) {
                    // Hand-off only: borrow the reshuffle phase for its
                    // barrier (the copies ride the reshuffle lane).
                    self.phase = SchedPhase::Reshuffle;
                } else {
                    self.reshuffle_done_at = ctx.now();
                    self.start_probe(ctx);
                }
            }
            SchedPhase::Reshuffle => {
                // The hybrid's redistribution *moves* tuples, so the
                // hot-key hand-off (which copies them) must run after it —
                // as a second round under the same reshuffle barrier.
                if self.start_hotkey_handoff(ctx) {
                    return;
                }
                self.reshuffle_done_at = ctx.now();
                self.record(ctx, TimelineKind::ReshuffleDone);
                self.trace(ctx, TraceKind::PhaseDone);
                self.install_reshuffled_routing();
                self.start_probe(ctx);
            }
            SchedPhase::Probe => {
                self.trace(ctx, TraceKind::PhaseDone);
                self.phase = SchedPhase::Reporting;
                let actors = self.active_actors();
                self.reports_expected = actors.len();
                for a in actors {
                    ctx.send(a, Msg::ReportRequest);
                }
            }
            _ => {}
        }
    }

    /// Builds the reshuffle groups; returns false when no range was
    /// replicated (nothing to do). Spilled members cannot redistribute
    /// (their build tuples live in spill files), so they sit out the
    /// reshuffle and instead remain probe-broadcast targets for their
    /// range; the surviving in-memory members still rebalance among
    /// themselves when there are at least two of them.
    fn start_reshuffle(&mut self, ctx: &mut dyn Context<Msg>) -> bool {
        let RoutingTable::Replica(m) = self.routing.inner() else {
            return false;
        };
        let spilled = &self.spilled_actors;
        let groups: Vec<Group> = m
            .entries()
            .iter()
            .filter_map(|e| {
                let (spilled_members, members): (Vec<ActorId>, Vec<ActorId>) =
                    e.owners.iter().partition(|o| spilled.contains(o));
                if members.len() < 2 {
                    return None; // nothing to redistribute
                }
                Some(Group {
                    members,
                    spilled_members,
                    range: e.range,
                    hist: vec![0u64; e.range.len() as usize],
                    replies: 0,
                    assignments: Vec::new(),
                    done: 0,
                })
            })
            .collect();
        if groups.is_empty() {
            return false;
        }
        self.groups = groups;
        self.sources_done = 0;
        self.src_sent_chunks = 0;
        for (gid, g) in self.groups.iter().enumerate() {
            for &member in &g.members {
                ctx.send(
                    member,
                    Msg::ReshuffleQuery {
                        group: gid as u32,
                        range: g.range,
                    },
                );
            }
        }
        true
    }

    /// Rejects a malformed or stale control message: the fault is traced
    /// (so it lands in the diagnostic tail of the resulting [`JoinError`])
    /// and this query quiesces with no report, which the runner surfaces
    /// as a protocol error. Indexing scheduler state with an unvalidated
    /// wire value would panic instead — and under the multi-tenant service
    /// a panic takes down every other query sharing the executor.
    ///
    /// [`JoinError`]: crate::runner::JoinError
    fn protocol_fault(
        &mut self,
        ctx: &mut dyn Context<Msg>,
        field: FaultField,
        value: u64,
        bound: u64,
    ) {
        self.trace(
            ctx,
            TraceKind::ProtocolFault {
                field,
                value,
                bound,
            },
        );
        ctx.stop();
    }

    fn handle_reshuffle_counts(&mut self, ctx: &mut dyn Context<Msg>, gid: u32, counts: Vec<u64>) {
        // Both the group id and the count vector arrive off the wire:
        // validate them against our own group table before indexing.
        let Some(hist_len) = self.groups.get(gid as usize).map(|g| g.hist.len()) else {
            let bound = self.groups.len() as u64;
            self.protocol_fault(ctx, FaultField::ReshuffleGroup, gid.into(), bound);
            return;
        };
        if counts.len() != hist_len {
            let bound = hist_len as u64;
            self.protocol_fault(ctx, FaultField::ReshuffleCounts, counts.len() as u64, bound);
            return;
        }
        // Hot positions inside this group's range are replicated by the
        // overlay, not owned by any single member: the planner zeroes them
        // so the cold mass is what gets equalized (with no overlay this is
        // byte-identical to the greedy equal partition).
        let hot_local: Vec<usize> = self
            .routing
            .overlay()
            .map(|o| {
                let range = self.groups[gid as usize].range;
                o.hot
                    .iter()
                    .filter(|&&p| p >= range.start && p < range.end)
                    .map(|&p| (p - range.start) as usize)
                    .collect()
            })
            .unwrap_or_default();
        let g = &mut self.groups[gid as usize];
        for (acc, c) in g.hist.iter_mut().zip(counts) {
            *acc += c;
        }
        g.replies += 1;
        if g.replies < g.members.len() {
            return;
        }
        // Global sum complete: run the skew-aware partition (§4.2.3 +
        // DESIGN §4i).
        let parts = skew_aware_partition(&g.hist, g.members.len(), &hot_local);
        g.assignments = parts
            .iter()
            .zip(&g.members)
            .map(|(&(a, b), &m)| {
                (
                    HashRange::new(g.range.start + a as u32, g.range.start + b as u32),
                    m,
                )
            })
            .collect();
        let plan = g.assignments.clone();
        let members = g.members.clone();
        self.trace(
            ctx,
            TraceKind::ReshufflePlanned {
                group: gid,
                members: members.len() as u64,
            },
        );
        for member in members {
            ctx.send(
                member,
                Msg::ReshufflePlan {
                    group: gid,
                    assignments: plan.clone(),
                },
            );
        }
    }

    fn handle_reshuffle_done(&mut self, ctx: &mut dyn Context<Msg>, gid: u32) {
        let bound = self.groups.len() as u64;
        let Some(g) = self.groups.get_mut(gid as usize) else {
            self.protocol_fault(ctx, FaultField::ReshuffleGroup, gid.into(), bound);
            return;
        };
        g.done += 1;
        self.maybe_start_flush(ctx);
    }

    /// Replaces reshuffled replica entries with their new disjoint
    /// assignments, producing the hybrid's probe routing. Entries whose
    /// replica set was skipped (a spilled member) stay replicated and keep
    /// probe broadcast semantics so spilled build tuples are still probed.
    fn install_reshuffled_routing(&mut self) {
        let RoutingTable::Replica(m) = self.routing.inner() else {
            return;
        };
        let mut entries: Vec<ehj_hash::ReplicaEntry<ActorId>> = Vec::new();
        let mut group_iter = self.groups.iter().peekable();
        for e in m.entries() {
            let reshuffled = group_iter.peek().is_some_and(|g| g.range == e.range);
            if reshuffled {
                let g = group_iter.next().expect("peeked");
                entries.extend(g.assignments.iter().map(|&(range, owner)| {
                    // Spilled members stay owners of every subrange: their
                    // on-disk build tuples still need the probes.
                    let mut owners = vec![owner];
                    owners.extend_from_slice(&g.spilled_members);
                    ehj_hash::ReplicaEntry { range, owners }
                }));
            } else {
                entries.push(e.clone());
            }
        }
        self.probe_routing = Some(RoutingTable::Replica(ReplicaMap::from_entries(entries)));
    }

    fn start_probe(&mut self, ctx: &mut dyn Context<Msg>) {
        self.phase = SchedPhase::Probe;
        self.sources_done = 0;
        self.src_sent_chunks = 0;
        // "The lists of working and full join nodes are merged" (§4.1.2).
        self.book.merge_full_into_working();
        // Cold routing: the reshuffled assignments when the hybrid ran a
        // redistribution, otherwise the build table sans any hot overlay.
        let base = self
            .probe_routing
            .clone()
            .unwrap_or_else(|| self.routing.inner().clone());
        let routing = match self.hotkey_handoff.as_ref() {
            // Post-hand-off, every clean member holds the full hot build
            // side: each hot probe goes to one member (round-robin) plus
            // every spilled node, whose private hot tuples live on disk.
            // With no clean members at all (every participant went out of
            // core), the hot build side is scattered across the spill
            // partitions and the extras alone must carry each hot probe.
            Some(h) => {
                let spilled = &self.spilled_actors;
                let extra: Vec<ActorId> = self
                    .active_actors()
                    .into_iter()
                    .filter(|a| spilled.contains(a))
                    .collect();
                if h.members.is_empty() && extra.is_empty() {
                    base
                } else {
                    let rr = u64::from(!h.members.is_empty());
                    self.metrics.hotkey_fanout.record(rr + extra.len() as u64);
                    RoutingTable::HotKeys {
                        overlay: HotKeyOverlay {
                            hot: h.hot.clone(),
                            replicas: h.members.clone(),
                            extra,
                        },
                        inner: Box::new(base),
                    }
                }
            }
            None => base,
        };
        self.version += 1;
        for &s in &self.topo.sources {
            ctx.send(
                s,
                Msg::StartProbe {
                    routing: routing.clone(),
                    version: self.version,
                },
            );
        }
        self.probe_routing = Some(routing);
    }

    fn handle_report(&mut self, ctx: &mut dyn Context<Msg>, report: NodeReport) {
        if self.phase == SchedPhase::Done {
            return; // straggler after completion
        }
        self.node_reports.push(report);
        if self.node_reports.len() < self.reports_expected {
            return;
        }
        self.phase = SchedPhase::Done;
        self.record(ctx, TimelineKind::ProbeDone);
        let now = ctx.now();
        let mut comm = self.src_comm.clone();
        let mut matches = 0u64;
        let mut compares = 0u64;
        let mut spilled_nodes = 0usize;
        let mut build_tuples = 0u64;
        let mut load = Vec::with_capacity(self.node_reports.len());
        for r in &self.node_reports {
            comm.merge(&r.comm);
            matches += r.matches;
            compares += r.compares;
            spilled_nodes += usize::from(r.spilled);
            build_tuples += r.build_tuples;
            load.push(r.build_tuples);
        }
        let times = PhaseTimes {
            build_secs: self.build_done_at.as_secs_f64(),
            reshuffle_secs: (self.reshuffle_done_at - self.build_done_at).as_secs_f64(),
            probe_secs: (now - self.reshuffle_done_at).as_secs_f64(),
            total_secs: now.as_secs_f64(),
        };
        let report = JoinReport {
            algorithm: self.cfg.algorithm,
            times,
            split_time_secs: self.split_time.as_secs_f64(),
            reshuffle_time_secs: times.reshuffle_secs,
            comm,
            load,
            matches,
            compares,
            initial_nodes: self.cfg.initial_nodes,
            final_nodes: self.node_reports.len(),
            expansions: self.expansions,
            spilled_nodes,
            build_tuples,
            probe_tuples: self.cfg.probe_spec().tuples,
            sim_events: 0,
            net_bytes: 0,
            disk_bytes: 0,
            timeline: std::mem::take(&mut self.timeline),
            trace: ehj_metrics::TraceRollup::default(),
            metrics: ehj_metrics::MetricsReport::default(),
        };
        *self.result.lock().expect("report lock") = Some(report);
        ctx.stop();
    }
}

impl Actor<Msg> for Scheduler {
    fn on_start(&mut self, ctx: &mut dyn Context<Msg>) {
        // Activate the initial join nodes, then start the sources.
        for a in self.active_actors() {
            ctx.send(
                a,
                Msg::Activate {
                    routing: self.routing.clone(),
                    version: self.version,
                },
            );
        }
        for &s in &self.topo.sources {
            ctx.send(
                s,
                Msg::StartBuild {
                    routing: self.routing.clone(),
                    version: self.version,
                },
            );
        }
    }

    fn on_message(&mut self, ctx: &mut dyn Context<Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::MemoryFull { .. } => {
                self.handle_memory_full(ctx, from);
                self.maybe_start_flush(ctx);
            }
            Msg::Relieved => self.handle_relieved(from),
            Msg::Spilled => {
                self.spilled_actors.insert(from);
                if let Some(node) = self.topo.node_of_actor(from) {
                    self.record(ctx, TimelineKind::Spilled(node.0));
                }
                self.handle_relieved(from);
            }
            Msg::SplitDone { step, moved_tuples } => {
                self.handle_split_done(ctx, step.old, moved_tuples);
            }
            Msg::RangeSplitDone {
                cut,
                moved_tuples,
                ok,
            } => {
                self.handle_range_split_done(ctx, cut, moved_tuples, ok);
            }
            Msg::SourcePhaseDone {
                sent_chunks, comm, ..
            } => {
                self.sources_done += 1;
                self.src_sent_chunks += sent_chunks;
                self.src_comm.merge(&comm);
                self.maybe_start_flush(ctx);
            }
            Msg::FlushAck {
                epoch,
                recv_chunks,
                fwd_chunks,
                pending,
            } => self.handle_flush_ack(ctx, epoch, recv_chunks, fwd_chunks, pending),
            Msg::RetryFlush => self.maybe_start_flush(ctx),
            Msg::ReshuffleCounts { group, histogram } => {
                self.handle_reshuffle_counts(ctx, group, histogram.counts);
            }
            Msg::ReshuffleDone { group, .. } => self.handle_reshuffle_done(ctx, group),
            Msg::SketchUpdate { sketch } => self.handle_sketch_update(ctx, from, sketch),
            Msg::HotKeyDone { .. } => {
                if let Some(h) = self.hotkey_handoff.as_mut() {
                    h.done += 1;
                }
                self.maybe_start_flush(ctx);
            }
            Msg::Report(r) => self.handle_report(ctx, *r),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use crate::msg::{Histogram, NodeReport};
    use crate::testutil::ScriptCtx;
    use ehj_cluster::ClusterSpec;
    use ehj_hash::SplitStep;
    use ehj_metrics::CommCounters;

    const SOURCES: usize = 1;
    const NODES: usize = 6;
    const SRC: ActorId = 1;
    /// Join-node actors are 2..8 under the standard wiring.
    const N0: ActorId = 2;
    const N1: ActorId = 3;
    const N2: ActorId = 4;

    fn setup(
        algorithm: Algorithm,
        initial: usize,
    ) -> (Scheduler, ScriptCtx, Arc<Mutex<Option<JoinReport>>>) {
        let mut cfg = JoinConfig::paper_scaled(algorithm, 1000);
        cfg.cluster = ClusterSpec::homogeneous(NODES, 1 << 20);
        cfg.initial_nodes = initial;
        cfg.sources = SOURCES;
        let topo = Topology::standard(SOURCES, NODES);
        let slot: Arc<Mutex<Option<JoinReport>>> = Arc::new(Mutex::new(None));
        let sched = Scheduler::new(Arc::new(cfg), topo, Arc::clone(&slot));
        let ctx = ScriptCtx::new(0);
        (sched, ctx, slot)
    }

    fn ack_all(sched: &mut Scheduler, ctx: &mut ScriptCtx, recv: u64, fwd: u64) {
        // Reply to the outstanding FlushQuery from every polled node.
        let queries: Vec<(ActorId, u64)> = ctx
            .sent
            .iter()
            .filter_map(|(to, m)| match m {
                Msg::FlushQuery { epoch, .. } => Some((*to, *epoch)),
                _ => None,
            })
            .collect();
        ctx.sent.clear();
        for (node, epoch) in queries {
            let _ = node;
            sched.on_message(
                ctx,
                node,
                Msg::FlushAck {
                    epoch,
                    recv_chunks: recv,
                    fwd_chunks: fwd,
                    pending: 0,
                },
            );
        }
    }

    #[test]
    fn on_start_activates_initial_nodes_and_sources() {
        let (mut sched, mut ctx, _) = setup(Algorithm::Replicated, 2);
        sched.on_start(&mut ctx);
        let activates: Vec<ActorId> = ctx
            .sent
            .iter()
            .filter_map(|(to, m)| matches!(m, Msg::Activate { .. }).then_some(*to))
            .collect();
        assert_eq!(activates, vec![N0, N1]);
        let starts: Vec<ActorId> = ctx
            .sent
            .iter()
            .filter_map(|(to, m)| matches!(m, Msg::StartBuild { .. }).then_some(*to))
            .collect();
        assert_eq!(starts, vec![SRC]);
    }

    #[test]
    fn routing_shape_matches_algorithm() {
        for (alg, policy) in [
            (Algorithm::Replicated, SplitPolicy::LinearPointer),
            (Algorithm::Hybrid, SplitPolicy::LinearPointer),
            (Algorithm::Split, SplitPolicy::LinearPointer),
            (Algorithm::Split, SplitPolicy::RangeBisect),
            (Algorithm::OutOfCore, SplitPolicy::LinearPointer),
        ] {
            let mut cfg = JoinConfig::paper_scaled(alg, 1000);
            cfg.cluster = ClusterSpec::homogeneous(NODES, 1 << 20);
            cfg.initial_nodes = 2;
            cfg.sources = SOURCES;
            cfg.split_policy = policy;
            let topo = Topology::standard(SOURCES, NODES);
            let slot = Arc::new(Mutex::new(None));
            let sched = Scheduler::new(Arc::new(cfg), topo, slot);
            match (alg, policy) {
                (Algorithm::Replicated | Algorithm::Hybrid, _) => {
                    assert!(matches!(sched.routing, RoutingTable::Replica(_)));
                }
                (Algorithm::Split, SplitPolicy::LinearPointer) => {
                    assert!(matches!(sched.routing, RoutingTable::Buckets(_)));
                }
                _ => assert!(matches!(sched.routing, RoutingTable::Disjoint(_))),
            }
        }
    }

    #[test]
    fn replicated_overflow_recruits_and_broadcasts() {
        let (mut sched, mut ctx, _) = setup(Algorithm::Replicated, 2);
        sched.on_start(&mut ctx);
        ctx.sent.clear();
        sched.on_message(&mut ctx, N0, Msg::MemoryFull { pending: 5 });
        // New node activated with the updated replica map.
        let activate_to: Vec<ActorId> = ctx
            .sent
            .iter()
            .filter_map(|(to, m)| matches!(m, Msg::Activate { .. }).then_some(*to))
            .collect();
        assert_eq!(activate_to.len(), 1);
        let new_actor = activate_to[0];
        assert!(new_actor > N1, "a potential node was recruited");
        // Routing update broadcast to the source and active nodes.
        let updates: Vec<ActorId> = ctx
            .sent
            .iter()
            .filter_map(|(to, m)| matches!(m, Msg::RoutingUpdate { .. }).then_some(*to))
            .collect();
        assert!(updates.contains(&SRC));
        assert!(updates.contains(&N0), "the full node learns its relief");
        assert_eq!(sched.expansions, 1);
        // The full node moved to the full list.
        assert_eq!(sched.book.full().len(), 1);
    }

    #[test]
    fn stale_replicated_overflow_is_skipped() {
        let (mut sched, mut ctx, _) = setup(Algorithm::Replicated, 2);
        sched.on_start(&mut ctx);
        sched.on_message(&mut ctx, N0, Msg::MemoryFull { pending: 5 });
        ctx.sent.clear();
        // N0 is no longer active for its range; a duplicate report must not
        // recruit again.
        sched.on_message(&mut ctx, N0, Msg::MemoryFull { pending: 5 });
        assert_eq!(sched.expansions, 1);
        assert_eq!(ctx.count(|m| matches!(m, Msg::Activate { .. })), 0);
    }

    #[test]
    fn pool_exhaustion_sends_no_more_nodes() {
        let (mut sched, mut ctx, _) = setup(Algorithm::Replicated, NODES);
        sched.on_start(&mut ctx);
        ctx.sent.clear();
        sched.on_message(&mut ctx, N2, Msg::MemoryFull { pending: 1 });
        assert_eq!(ctx.sent_to(N2).len(), 1);
        assert!(matches!(ctx.sent_to(N2)[0], Msg::NoMoreNodes));
        assert_eq!(sched.expansions, 0);
        assert!(sched.spilled_actors.contains(&N2));
    }

    #[test]
    fn split_overflow_requests_pointer_bucket_split() {
        let (mut sched, mut ctx, _) = setup(Algorithm::Split, 2);
        sched.on_start(&mut ctx);
        ctx.sent.clear();
        // N1 reports full; the pointer bucket (bucket 0) is owned by N0.
        sched.on_message(&mut ctx, N1, Msg::MemoryFull { pending: 9 });
        let reqs: Vec<(ActorId, &Msg)> = ctx
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::SplitRequest { .. }))
            .map(|(to, m)| (*to, m))
            .collect();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].0, N0, "pointer order, not reporter identity");
        assert_eq!(sched.lp_inflight.len(), 1);
    }

    #[test]
    fn split_round_boundary_waits_for_inflight_splits() {
        let (mut sched, mut ctx, _) = setup(Algorithm::Split, 2);
        sched.on_start(&mut ctx);
        ctx.sent.clear();
        // Two reports: bucket 0 and bucket 1 split concurrently (same round).
        sched.on_message(&mut ctx, N0, Msg::MemoryFull { pending: 1 });
        sched.on_message(&mut ctx, N1, Msg::MemoryFull { pending: 1 });
        assert_eq!(sched.lp_inflight.len(), 2, "same-round splits overlap");
        // A third report would start a new round: it must queue.
        sched.on_message(&mut ctx, N2, Msg::MemoryFull { pending: 1 });
        assert_eq!(sched.lp_inflight.len(), 2);
        assert_eq!(sched.overflow_queue.len(), 1);
        // Completing the first two releases the round barrier.
        let steps: Vec<SplitStep> = ctx
            .sent
            .iter()
            .filter_map(|(_, m)| match m {
                Msg::SplitRequest { step, .. } => Some(*step),
                _ => None,
            })
            .collect();
        for step in steps {
            sched.on_message(
                &mut ctx,
                N0,
                Msg::SplitDone {
                    step,
                    moved_tuples: 0,
                },
            );
        }
        assert_eq!(sched.lp_inflight.len(), 1, "queued report processed");
        assert!(sched.overflow_queue.is_empty());
    }

    #[test]
    fn relieved_retracts_a_queued_report() {
        let (mut sched, mut ctx, _) = setup(Algorithm::Split, 2);
        sched.on_start(&mut ctx);
        ctx.sent.clear();
        sched.on_message(&mut ctx, N0, Msg::MemoryFull { pending: 1 });
        sched.on_message(&mut ctx, N1, Msg::MemoryFull { pending: 1 });
        sched.on_message(&mut ctx, N2, Msg::MemoryFull { pending: 1 });
        assert_eq!(sched.overflow_queue.len(), 1);
        sched.on_message(&mut ctx, N2, Msg::Relieved);
        assert!(sched.overflow_queue.is_empty(), "stale report dropped");
    }

    fn drive_build_to_probe(
        sched: &mut Scheduler,
        ctx: &mut ScriptCtx,
        sent_chunks: u64,
        recv_per_node: u64,
    ) {
        sched.on_message(
            ctx,
            SRC,
            Msg::SourcePhaseDone {
                phase: Phase::Build,
                sent_chunks,
                sent_tuples: sent_chunks * 100,
                comm: Box::new(CommCounters::new(100)),
            },
        );
        ack_all(sched, ctx, recv_per_node, 0);
    }

    #[test]
    fn counting_barrier_retries_until_balanced() {
        let (mut sched, mut ctx, _) = setup(Algorithm::OutOfCore, 2);
        sched.on_start(&mut ctx);
        ctx.sent.clear();
        // Source sent 10 chunks but nodes only saw 8: barrier must re-poll.
        drive_build_to_probe(&mut sched, &mut ctx, 10, 4);
        assert_eq!(
            ctx.count(|m| matches!(m, Msg::RetryFlush)),
            1,
            "imbalance schedules a retry"
        );
        assert_eq!(ctx.count(|m| matches!(m, Msg::StartProbe { .. })), 0);
        // Retry fires; now the counts match.
        ctx.sent.clear();
        sched.on_message(&mut ctx, 0, Msg::RetryFlush);
        ack_all(&mut sched, &mut ctx, 5, 0);
        assert_eq!(ctx.count(|m| matches!(m, Msg::StartProbe { .. })), 1);
    }

    #[test]
    fn build_barrier_advances_straight_to_probe_without_replication() {
        let (mut sched, mut ctx, _) = setup(Algorithm::Hybrid, 2);
        sched.on_start(&mut ctx);
        ctx.sent.clear();
        drive_build_to_probe(&mut sched, &mut ctx, 10, 5);
        // No range was replicated: hybrid skips the reshuffle entirely.
        assert_eq!(ctx.count(|m| matches!(m, Msg::ReshuffleQuery { .. })), 0);
        assert_eq!(ctx.count(|m| matches!(m, Msg::StartProbe { .. })), 1);
    }

    #[test]
    fn hybrid_reshuffles_replicated_ranges_then_probes_disjoint() {
        let (mut sched, mut ctx, _) = setup(Algorithm::Hybrid, 2);
        sched.on_start(&mut ctx);
        // One replication: N0's range gains a new replica.
        sched.on_message(&mut ctx, N0, Msg::MemoryFull { pending: 1 });
        let new_actor = ctx
            .sent
            .iter()
            .find_map(|(to, m)| matches!(m, Msg::Activate { .. }).then_some(*to))
            .expect("recruited");
        ctx.sent.clear();
        // Three active nodes ack 10 received chunks each = the 30 sent.
        drive_build_to_probe(&mut sched, &mut ctx, 30, 10);
        // Reshuffle queries go to both members of the replicated range.
        let queried: Vec<ActorId> = ctx
            .sent
            .iter()
            .filter_map(|(to, m)| matches!(m, Msg::ReshuffleQuery { .. }).then_some(*to))
            .collect();
        assert_eq!(queried.len(), 2);
        assert!(queried.contains(&N0) && queried.contains(&new_actor));
        ctx.sent.clear();
        // Histograms: members hold equal loads over the range.
        let range_len = match &sched.routing {
            RoutingTable::Replica(m) => m.entries()[0].range.len(),
            _ => panic!("hybrid uses replica routing"),
        };
        for &member in &[N0, new_actor] {
            sched.on_message(
                &mut ctx,
                member,
                Msg::ReshuffleCounts {
                    group: 0,
                    histogram: Histogram {
                        counts: vec![1; range_len as usize],
                    },
                },
            );
        }
        // Both members receive the plan.
        let planned: Vec<ActorId> = ctx
            .sent
            .iter()
            .filter_map(|(to, m)| matches!(m, Msg::ReshufflePlan { .. }).then_some(*to))
            .collect();
        assert_eq!(planned.len(), 2);
        ctx.sent.clear();
        for &member in &[N0, new_actor] {
            sched.on_message(
                &mut ctx,
                member,
                Msg::ReshuffleDone {
                    group: 0,
                    sent_tuples: 3,
                },
            );
        }
        // Reshuffle data barrier: nodes report balanced reshuffle chunks.
        ack_all(&mut sched, &mut ctx, 1, 1);
        let probe_routing = ctx
            .sent
            .iter()
            .find_map(|(_, m)| match m {
                Msg::StartProbe { routing, .. } => Some(routing.clone()),
                _ => None,
            })
            .expect("probe starts after reshuffle");
        // The reshuffled range is now disjoint: every entry has one owner.
        match probe_routing {
            RoutingTable::Replica(m) => {
                assert!(m.entries().iter().all(|e| e.owners.len() == 1));
            }
            other => panic!("hybrid probe routing should be replica-shaped, got {other:?}"),
        }
    }

    #[test]
    fn reports_assemble_the_join_report_and_stop() {
        let (mut sched, mut ctx, slot) = setup(Algorithm::OutOfCore, 2);
        sched.on_start(&mut ctx);
        ctx.sent.clear();
        drive_build_to_probe(&mut sched, &mut ctx, 10, 5);
        // Probe phase: source done, nodes drained.
        sched.on_message(
            &mut ctx,
            SRC,
            Msg::SourcePhaseDone {
                phase: Phase::Probe,
                sent_chunks: 4,
                sent_tuples: 400,
                comm: Box::new(CommCounters::new(100)),
            },
        );
        ack_all(&mut sched, &mut ctx, 2, 0);
        let report_requests = ctx.count(|m| matches!(m, Msg::ReportRequest));
        assert_eq!(report_requests, 2);
        for node in [N0, N1] {
            sched.on_message(
                &mut ctx,
                node,
                Msg::Report(Box::new(NodeReport {
                    build_tuples: 50,
                    matches: 7,
                    compares: 70,
                    comm: CommCounters::new(100),
                    spilled: false,
                    grace: None,
                })),
            );
        }
        assert!(ctx.stopped, "the scheduler stops the engine when done");
        let report = slot
            .lock()
            .expect("report lock")
            .take()
            .expect("report written");
        assert_eq!(report.matches, 14);
        assert_eq!(report.build_tuples, 100);
        assert_eq!(report.final_nodes, 2);
        assert_eq!(report.load, vec![50, 50]);
    }

    #[test]
    fn range_split_failure_returns_the_spare_node() {
        let (mut sched, mut ctx, _) = setup(Algorithm::Split, 2);
        sched.cfg = {
            let mut cfg = (*sched.cfg).clone();
            cfg.split_policy = SplitPolicy::RangeBisect;
            Arc::new(cfg)
        };
        // Rebuild routing for the policy (normally done in new()).
        sched.routing =
            RoutingTable::Disjoint(RangeMap::partitioned(sched.cfg.positions, &[N0, N1]));
        sched.on_start(&mut ctx);
        ctx.sent.clear();
        let potential_before = sched.book.potential().len();
        sched.on_message(&mut ctx, N0, Msg::MemoryFull { pending: 1 });
        assert!(sched.rb_op.is_some());
        sched.on_message(
            &mut ctx,
            N0,
            Msg::RangeSplitDone {
                cut: 0,
                moved_tuples: 0,
                ok: false,
            },
        );
        assert!(sched.rb_op.is_none());
        assert_eq!(
            sched.book.potential().len(),
            potential_before,
            "the unused spare goes back to the pool"
        );
        assert!(matches!(ctx.sent_to(N0).last(), Some(Msg::NoMoreNodes)));
        assert_eq!(sched.expansions, 0);
    }

    // ---- hot-key routing (DESIGN §4i) ----

    fn hot_setup(algorithm: Algorithm, initial: usize) -> (Scheduler, ScriptCtx) {
        let mut cfg = JoinConfig::paper_scaled(algorithm, 1000);
        cfg.cluster = ClusterSpec::homogeneous(NODES, 1 << 20);
        cfg.initial_nodes = initial;
        cfg.sources = SOURCES;
        cfg.hot_keys = crate::config::HotKeyConfig::enabled();
        cfg.hot_keys.min_total = 100;
        let topo = Topology::standard(SOURCES, NODES);
        let slot = Arc::new(Mutex::new(None));
        let mut sched = Scheduler::new(Arc::new(cfg), topo, slot);
        let mut ctx = ScriptCtx::new(0);
        sched.on_start(&mut ctx);
        ctx.sent.clear();
        (sched, ctx)
    }

    fn skewed_sketch() -> SpaceSaving {
        let mut sk = SpaceSaving::new(8);
        sk.observe_n(700, 500);
        sk.observe_n(10, 20);
        sk
    }

    #[test]
    fn skewed_sketch_installs_overlay_and_broadcasts() {
        let (mut sched, mut ctx) = hot_setup(Algorithm::Replicated, 2);
        sched.on_message(
            &mut ctx,
            SRC,
            Msg::SketchUpdate {
                sketch: skewed_sketch(),
            },
        );
        let overlay = sched.routing.overlay().expect("overlay installed");
        assert!(overlay.hot.contains(&700));
        assert_eq!(overlay.replicas, vec![N0, N1]);
        assert!(overlay.extra.is_empty(), "no extras during build");
        assert!(
            ctx.sent
                .iter()
                .any(|(to, m)| *to == SRC && matches!(m, Msg::RoutingUpdate { .. })),
            "sources must learn the overlay"
        );
        assert_eq!(sched.expansions, 0, "an overlay is not an expansion");
    }

    #[test]
    fn uniform_sketch_never_installs_an_overlay() {
        let (mut sched, mut ctx) = hot_setup(Algorithm::Replicated, 2);
        let mut sk = SpaceSaving::new(64);
        for key in 0..64u64 {
            sk.observe_n(key, 2); // 128 total, no key clears its share
        }
        sched.on_message(&mut ctx, SRC, Msg::SketchUpdate { sketch: sk });
        assert!(sched.routing.overlay().is_none());
        assert_eq!(ctx.count(|m| matches!(m, Msg::RoutingUpdate { .. })), 0);
    }

    #[test]
    fn replacing_a_sketch_snapshot_never_double_counts() {
        let (mut sched, mut ctx) = hot_setup(Algorithm::Replicated, 2);
        // Two cumulative snapshots from the same source: only the latest
        // counts. 80 observed tuples stay under min_total = 100.
        let mut first = SpaceSaving::new(8);
        first.observe_n(700, 60);
        let mut second = SpaceSaving::new(8);
        second.observe_n(700, 80);
        sched.on_message(&mut ctx, SRC, Msg::SketchUpdate { sketch: first });
        sched.on_message(&mut ctx, SRC, Msg::SketchUpdate { sketch: second });
        assert!(
            sched.routing.overlay().is_none(),
            "60 + 80 would clear min_total; a replaced snapshot must not"
        );
    }

    #[test]
    fn oversized_sketch_is_a_protocol_fault() {
        let (mut sched, mut ctx) = hot_setup(Algorithm::Replicated, 2);
        let mut sk = SpaceSaving::new(1024);
        for key in 0..1024u64 {
            sk.observe(key);
        }
        sched.on_message(&mut ctx, SRC, Msg::SketchUpdate { sketch: sk });
        assert!(ctx.stopped, "a sketch beyond the configured capacity");
        assert!(sched.routing.overlay().is_none());
    }

    #[test]
    fn handoff_runs_at_the_build_barrier_and_probe_gets_the_overlay() {
        let (mut sched, mut ctx) = hot_setup(Algorithm::Replicated, 2);
        sched.on_message(
            &mut ctx,
            SRC,
            Msg::SketchUpdate {
                sketch: skewed_sketch(),
            },
        );
        ctx.sent.clear();
        drive_build_to_probe(&mut sched, &mut ctx, 20, 10);
        // Build barrier settled: the hand-off round starts, not the probe.
        let plans: Vec<ActorId> = ctx
            .sent
            .iter()
            .filter_map(|(to, m)| matches!(m, Msg::HotKeyPlan { .. }).then_some(*to))
            .collect();
        assert_eq!(plans, vec![N0, N1]);
        assert_eq!(ctx.count(|m| matches!(m, Msg::StartProbe { .. })), 0);
        ctx.sent.clear();
        for &member in &[N0, N1] {
            sched.on_message(&mut ctx, member, Msg::HotKeyDone { sent_tuples: 5 });
        }
        // Hand-off barrier: both members report balanced reshuffle-lane
        // chunk counts (each shipped one chunk, each received one).
        ack_all(&mut sched, &mut ctx, 1, 1);
        let probe_routing = ctx
            .sent
            .iter()
            .find_map(|(_, m)| match m {
                Msg::StartProbe { routing, .. } => Some(routing.clone()),
                _ => None,
            })
            .expect("probe starts after the hand-off");
        let overlay = probe_routing.overlay().expect("probe overlay");
        assert_eq!(overlay.hot.first(), Some(&10));
        assert!(overlay.hot.contains(&700));
        assert_eq!(overlay.replicas, vec![N0, N1]);
        assert!(overlay.extra.is_empty(), "no spilled members here");
        assert!(matches!(probe_routing.inner(), RoutingTable::Replica(_)));
    }
}

#[cfg(test)]
mod robustness_tests {
    //! Protocol robustness: the scheduler must tolerate duplicate, stale
    //! and out-of-order control messages (the counting barriers and op
    //! guards exist precisely for this).

    use super::*;
    use crate::config::Algorithm;
    use crate::msg::NodeReport;
    use crate::testutil::ScriptCtx;
    use ehj_cluster::ClusterSpec;
    use ehj_metrics::CommCounters;

    fn setup(algorithm: Algorithm) -> (Scheduler, ScriptCtx) {
        let mut cfg = JoinConfig::paper_scaled(algorithm, 1000);
        cfg.cluster = ClusterSpec::homogeneous(6, 1 << 20);
        cfg.initial_nodes = 2;
        cfg.sources = 1;
        let topo = Topology::standard(1, 6);
        let slot = Arc::new(Mutex::new(None));
        let mut sched = Scheduler::new(Arc::new(cfg), topo, slot);
        let mut ctx = ScriptCtx::new(0);
        sched.on_start(&mut ctx);
        ctx.sent.clear();
        (sched, ctx)
    }

    #[test]
    fn duplicate_split_done_is_ignored() {
        let (mut sched, mut ctx) = setup(Algorithm::Split);
        sched.on_message(&mut ctx, 2, Msg::MemoryFull { pending: 1 });
        let step = ctx
            .sent
            .iter()
            .find_map(|(_, m)| match m {
                Msg::SplitRequest { step, .. } => Some(*step),
                _ => None,
            })
            .expect("split requested");
        sched.on_message(
            &mut ctx,
            2,
            Msg::SplitDone {
                step,
                moved_tuples: 3,
            },
        );
        let splits_after_first = sched.split_time;
        // A duplicate completion for the same bucket must be a no-op.
        sched.on_message(
            &mut ctx,
            2,
            Msg::SplitDone {
                step,
                moved_tuples: 3,
            },
        );
        assert_eq!(sched.split_time, splits_after_first);
        assert!(sched.lp_inflight.is_empty());
    }

    #[test]
    fn stale_flush_acks_from_old_epochs_are_ignored() {
        let (mut sched, mut ctx) = setup(Algorithm::OutOfCore);
        sched.on_message(
            &mut ctx,
            1,
            Msg::SourcePhaseDone {
                phase: Phase::Build,
                sent_chunks: 10,
                sent_tuples: 1000,
                comm: Box::new(CommCounters::new(100)),
            },
        );
        let epoch = sched.epoch;
        assert!(sched.flush_in_progress);
        // An ack from a previous epoch must not count.
        sched.on_message(
            &mut ctx,
            2,
            Msg::FlushAck {
                epoch: epoch - 1,
                recv_chunks: 5,
                fwd_chunks: 0,
                pending: 0,
            },
        );
        assert_eq!(sched.acks, 0, "stale epoch ignored");
        // Correct-epoch acks complete the round.
        for node in [2u32, 3] {
            sched.on_message(
                &mut ctx,
                node,
                Msg::FlushAck {
                    epoch,
                    recv_chunks: 5,
                    fwd_chunks: 0,
                    pending: 0,
                },
            );
        }
        assert!(!sched.flush_in_progress);
    }

    #[test]
    fn unexpected_range_split_done_is_ignored() {
        let (mut sched, mut ctx) = setup(Algorithm::Split);
        // No range-bisect op in flight: a spurious done must not panic or
        // mutate routing.
        let before = sched.routing.clone();
        sched.on_message(
            &mut ctx,
            2,
            Msg::RangeSplitDone {
                cut: 5,
                moved_tuples: 1,
                ok: true,
            },
        );
        assert_eq!(sched.routing, before);
    }

    #[test]
    fn reports_after_done_are_tolerated() {
        let (mut sched, mut ctx) = setup(Algorithm::OutOfCore);
        // Force the reporting phase directly.
        sched.phase = SchedPhase::Reporting;
        sched.reports_expected = 1;
        let report = NodeReport {
            build_tuples: 1,
            matches: 0,
            compares: 0,
            comm: CommCounters::new(100),
            spilled: false,
            grace: None,
        };
        sched.on_message(&mut ctx, 2, Msg::Report(Box::new(report.clone())));
        assert!(ctx.stopped);
        // A straggler report after completion must not panic.
        sched.on_message(&mut ctx, 3, Msg::Report(Box::new(report)));
    }

    #[test]
    fn memory_full_in_ooc_mode_is_a_no_op() {
        let (mut sched, mut ctx) = setup(Algorithm::OutOfCore);
        sched.on_message(&mut ctx, 2, Msg::MemoryFull { pending: 99 });
        assert_eq!(sched.expansions, 0);
        assert!(sched.overflow_queue.is_empty());
        assert_eq!(ctx.count(|m| matches!(m, Msg::Activate { .. })), 0);
    }

    #[test]
    fn relieved_from_unknown_node_is_harmless() {
        let (mut sched, mut ctx) = setup(Algorithm::Split);
        sched.on_message(&mut ctx, 99, Msg::Relieved);
        assert!(sched.overflow_queue.is_empty());
    }

    fn stub_group(range_len: u32) -> Group {
        Group {
            members: vec![2, 3],
            spilled_members: Vec::new(),
            range: HashRange::new(0, range_len),
            hist: vec![0; range_len as usize],
            replies: 0,
            assignments: Vec::new(),
            done: 0,
        }
    }

    #[test]
    fn out_of_range_reshuffle_group_id_is_rejected_not_a_panic() {
        // Pre-validation this indexed `self.groups[gid]` straight off the
        // wire and panicked — which under the multi-tenant service would
        // take down every other query on the executor.
        let (mut sched, mut ctx) = setup(Algorithm::Hybrid);
        assert!(sched.groups.is_empty(), "no reshuffle started");
        sched.on_message(
            &mut ctx,
            2,
            Msg::ReshuffleCounts {
                group: 7,
                histogram: crate::msg::Histogram { counts: vec![1; 4] },
            },
        );
        assert!(ctx.stopped, "the query quiesces through the error path");
    }

    #[test]
    fn out_of_range_reshuffle_done_is_rejected_not_a_panic() {
        let (mut sched, mut ctx) = setup(Algorithm::Hybrid);
        sched.groups.push(stub_group(4));
        sched.on_message(
            &mut ctx,
            2,
            Msg::ReshuffleDone {
                group: 1, // one past the last valid gid
                sent_tuples: 5,
            },
        );
        assert!(ctx.stopped);
        assert_eq!(sched.groups[0].done, 0, "no group was touched");
    }

    #[test]
    fn reshuffle_counts_length_mismatch_is_rejected_not_asserted() {
        let (mut sched, mut ctx) = setup(Algorithm::Hybrid);
        sched.groups.push(stub_group(4));
        // A well-formed reply accumulates.
        sched.on_message(
            &mut ctx,
            2,
            Msg::ReshuffleCounts {
                group: 0,
                histogram: crate::msg::Histogram { counts: vec![1; 4] },
            },
        );
        assert_eq!(sched.groups[0].replies, 1);
        assert!(!ctx.stopped);
        // A histogram of the wrong width must not zip-truncate into the
        // accumulator (silent corruption in release builds pre-fix).
        sched.on_message(
            &mut ctx,
            3,
            Msg::ReshuffleCounts {
                group: 0,
                histogram: crate::msg::Histogram { counts: vec![1; 3] },
            },
        );
        assert!(ctx.stopped);
        assert_eq!(sched.groups[0].replies, 1, "malformed reply not counted");
    }

    #[test]
    fn split_done_for_unknown_bucket_is_ignored() {
        // The `old_bucket` audit: `handle_split_done` guards through
        // `lp_inflight`, so an unknown bucket id off the wire is dropped
        // without touching split accounting.
        let (mut sched, mut ctx) = setup(Algorithm::Split);
        let before = sched.split_time;
        sched.on_message(
            &mut ctx,
            2,
            Msg::SplitDone {
                step: ehj_hash::SplitStep {
                    old: 9999,
                    new: 10_000,
                    mid: 1,
                },
                moved_tuples: 17,
            },
        );
        assert_eq!(sched.split_time, before);
        assert!(!ctx.stopped);
    }
}
