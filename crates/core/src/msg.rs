//! The message protocol between scheduler, data sources and join processes.

use crate::routing::RoutingTable;
use ehj_data::TupleBatch;
use ehj_hash::{HashRange, SpaceSaving, SplitStep};
use ehj_metrics::{CommCategory, CommCounters, Phase};
use ehj_sim::{ActorId, Message};
use ehj_storage::GraceResult;

/// Wire size charged for a bare control message.
pub const CONTROL_BYTES: u64 = 64;

/// A sparse-or-dense per-position entry histogram (reshuffle global sum
/// input). Stored dense; charged on the wire at whichever encoding is
/// smaller, as a real implementation would send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-position counts, relative to the queried range start.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// On-wire bytes: dense (8 B/cell) vs sparse (12 B per non-zero cell),
    /// whichever is smaller, plus a header.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        let dense = 8 * self.counts.len() as u64;
        let sparse = 12 * self.counts.iter().filter(|&&c| c != 0).count() as u64;
        CONTROL_BYTES + dense.min(sparse)
    }
}

/// Per-node final report returned to the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Tuples resident in the node's table at the end (post-reshuffle).
    pub build_tuples: u64,
    /// Matches found by this node's probes.
    pub matches: u64,
    /// Chain comparisons performed.
    pub compares: u64,
    /// This node's communication counters.
    pub comm: CommCounters,
    /// Whether the node spilled out of core.
    pub spilled: bool,
    /// Out-of-core join statistics when spilled.
    pub grace: Option<GraceResult>,
}

/// Everything that flows between actors.
#[derive(Debug, Clone)]
pub enum Msg {
    // ---- scheduler → join nodes ----
    /// Activates a join node (initial setup or recruitment) with the
    /// current routing state. Handling charges the recruit latency.
    Activate {
        /// Routing table at activation time.
        routing: RoutingTable,
        /// Routing version.
        version: u64,
    },
    /// New routing state after an expansion (broadcast to sources too).
    RoutingUpdate {
        /// The new table.
        routing: RoutingTable,
        /// Monotonic version; stale updates are ignored.
        version: u64,
    },
    /// Linear-pointer split: the addressed node owns `step.old` and must
    /// ship the elements whose position falls in the upper half
    /// (`>= step.mid`) to `new_node`.
    SplitRequest {
        /// What to split.
        step: SplitStep,
        /// Actor receiving the new bucket.
        new_node: ActorId,
    },
    /// Range-bisect split: the addressed (full) node must cut its own range
    /// at its load median and ship the upper half to `new_node`.
    RangeSplitRequest {
        /// Actor receiving the upper half.
        new_node: ActorId,
        /// The full node's current range.
        range: HashRange,
    },
    /// Reshuffle step 1: report the per-position histogram of `range`.
    ReshuffleQuery {
        /// Replica-set group id.
        group: u32,
        /// The replicated range.
        range: HashRange,
    },
    /// Reshuffle step 2: the new disjoint partitioning of the group's
    /// range; ship entries you hold that now belong to others.
    ReshufflePlan {
        /// Replica-set group id.
        group: u32,
        /// `(subrange, owner)` assignments covering the group's range.
        assignments: Vec<(HashRange, ActorId)>,
    },
    /// Hot-key replication hand-off: the addressed node must copy (not
    /// remove) its tuples at the listed hot positions to every *other*
    /// member, so each clean member ends with the full hot build side
    /// (DESIGN §4i).
    HotKeyPlan {
        /// Hot hash positions, sorted ascending.
        positions: Vec<u32>,
        /// The clean replica set sharing the hot build tuples.
        members: Vec<ActorId>,
    },
    /// No potential nodes remain (or the hot range cannot be split): fall
    /// back to spilling out of core.
    NoMoreNodes,
    /// Phase-barrier poll.
    FlushQuery {
        /// Poll epoch (acks from older epochs are ignored).
        epoch: u64,
        /// Phase being drained.
        phase: Phase,
    },
    /// Request the node's final [`NodeReport`] (triggers out-of-core
    /// finalize on spilled nodes).
    ReportRequest,

    // ---- scheduler → data sources ----
    /// Begin generating and routing the build relation.
    StartBuild {
        /// Build routing.
        routing: RoutingTable,
        /// Routing version.
        version: u64,
    },
    /// Begin generating and routing the probe relation.
    StartProbe {
        /// Probe routing (final; never changes during the probe).
        routing: RoutingTable,
        /// Routing version.
        version: u64,
    },

    // ---- join nodes → scheduler ----
    /// "Memory for data elements cannot be allocated" (§4.1.3).
    MemoryFull {
        /// Tuples queued pending relief.
        pending: u64,
    },
    /// Retracts an earlier [`Msg::MemoryFull`]: the node's pending queue
    /// drained (a split or ownership change relieved it), so any still-
    /// queued overflow report for it must not trigger another split.
    Relieved,
    /// This node went out of core. Its table contents now live in spill
    /// files, so its bucket can no longer be split: the scheduler stops
    /// advancing the split pointer through it.
    Spilled,
    /// A linear-pointer split completed at the old bucket's owner.
    SplitDone {
        /// The split that completed.
        step: SplitStep,
        /// Tuples shipped to the new bucket.
        moved_tuples: u64,
    },
    /// A range-bisect split completed (or degenerately failed when
    /// `moved_tuples == 0` and the range cannot be cut).
    RangeSplitDone {
        /// Chosen cut position; upper half `[cut, end)` moved.
        cut: u32,
        /// Tuples shipped.
        moved_tuples: u64,
        /// Whether a usable cut existed.
        ok: bool,
    },
    /// Reshuffle histogram reply.
    ReshuffleCounts {
        /// Replica-set group id.
        group: u32,
        /// Per-position counts over the queried range.
        histogram: Histogram,
    },
    /// This node finished shipping reshuffle entries.
    ReshuffleDone {
        /// Replica-set group id.
        group: u32,
        /// Tuples shipped to other members.
        sent_tuples: u64,
    },
    /// Hot-key hand-off complete at this node.
    HotKeyDone {
        /// Hot tuple copies shipped to the other members.
        sent_tuples: u64,
    },
    /// Barrier poll reply.
    FlushAck {
        /// Epoch being acknowledged.
        epoch: u64,
        /// Cumulative data chunks received in the polled phase.
        recv_chunks: u64,
        /// Cumulative data chunks this node forwarded in the polled phase.
        fwd_chunks: u64,
        /// Tuples still pending (unhoused) at this node.
        pending: u64,
    },
    /// Final per-node statistics.
    Report(Box<NodeReport>),

    // ---- data sources → scheduler ----
    /// Cumulative space-saving sketch of this source's build key stream so
    /// far (replaces, not adds to, the source's previous snapshot at the
    /// scheduler). Sent at a tuple threshold and then at each doubling.
    SketchUpdate {
        /// The source's sketch over hash positions.
        sketch: SpaceSaving,
    },
    /// A source finished generating and flushing one phase.
    SourcePhaseDone {
        /// Which phase finished.
        phase: Phase,
        /// Chunks this source sent to join nodes in that phase.
        sent_chunks: u64,
        /// Tuples sent (probe broadcasts count every copy).
        sent_tuples: u64,
        /// The source's communication counters (moved, not merged, so the
        /// scheduler aggregates exactly once).
        comm: Box<CommCounters>,
    },

    // ---- data plane (any → join nodes) ----
    /// A batch of tuples. `tuple_bytes` is the schema's payload-inclusive
    /// row size, carried so the wire charge is payload-accurate. The batch
    /// is a shared view: fanning one out to every replica of a range clones
    /// an `Arc`, not the tuples.
    Data {
        /// Phase the data belongs to.
        phase: Phase,
        /// Why it was sent (delivery, split transfer, forward, ...).
        category: CommCategory,
        /// The tuples.
        tuples: TupleBatch,
        /// Row size under the run's schema.
        tuple_bytes: u64,
    },

    /// A batch of hot-key build-tuple *copies* from a peer's hand-off.
    /// Distinct from [`Msg::Data`] so a receiver that has not yet processed
    /// its own [`Msg::HotKeyPlan`] can stash the copies and insert them
    /// only after extracting its own hot set — otherwise it would re-ship a
    /// peer's copies under threaded timing.
    HotKeyData {
        /// The copied tuples.
        tuples: TupleBatch,
        /// Row size under the run's schema.
        tuple_bytes: u64,
    },

    /// Flow-control credit: acknowledges one [`Msg::Data`] chunk back to
    /// its sender (TCP-receive-window emulation; see `source.rs`).
    DataAck,

    // ---- self-scheduled timers ----
    /// Data-source generation step.
    GenStep,
    /// Scheduler barrier re-poll.
    RetryFlush,
}

impl Message for Msg {
    fn wire_bytes(&self) -> u64 {
        match self {
            Msg::Data {
                tuples,
                tuple_bytes,
                ..
            }
            | Msg::HotKeyData {
                tuples,
                tuple_bytes,
            } => CONTROL_BYTES + tuples.len() as u64 * tuple_bytes,
            Msg::Activate { routing, .. }
            | Msg::RoutingUpdate { routing, .. }
            | Msg::StartBuild { routing, .. }
            | Msg::StartProbe { routing, .. } => CONTROL_BYTES + routing.wire_bytes(),
            Msg::ReshuffleCounts { histogram, .. } => histogram.wire_bytes(),
            Msg::ReshufflePlan { assignments, .. } => CONTROL_BYTES + 16 * assignments.len() as u64,
            Msg::HotKeyPlan { positions, members } => {
                CONTROL_BYTES + 4 * (positions.len() + members.len()) as u64
            }
            Msg::SketchUpdate { sketch } => CONTROL_BYTES + sketch.wire_bytes(),
            Msg::SourcePhaseDone { .. } | Msg::Report(_) => 256,
            _ => CONTROL_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehj_data::Tuple;
    use ehj_hash::RangeMap;

    #[test]
    fn data_wire_bytes_include_payload() {
        let m = Msg::Data {
            phase: Phase::Build,
            category: CommCategory::SourceDelivery,
            tuples: vec![Tuple::new(0, 0); 10].into(),
            tuple_bytes: 116,
        };
        assert_eq!(m.wire_bytes(), CONTROL_BYTES + 1160);
    }

    #[test]
    fn control_messages_are_small() {
        assert_eq!(Msg::GenStep.wire_bytes(), CONTROL_BYTES);
        assert_eq!(Msg::ReportRequest.wire_bytes(), CONTROL_BYTES);
        assert_eq!(Msg::MemoryFull { pending: 5 }.wire_bytes(), CONTROL_BYTES);
    }

    #[test]
    fn routing_messages_scale_with_table() {
        let small = Msg::RoutingUpdate {
            routing: RoutingTable::Disjoint(RangeMap::partitioned(100, &[1, 2])),
            version: 1,
        };
        let large = Msg::RoutingUpdate {
            routing: RoutingTable::Disjoint(RangeMap::partitioned(100, &[1, 2, 3, 4, 5, 6, 7, 8])),
            version: 1,
        };
        assert!(large.wire_bytes() > small.wire_bytes());
    }

    #[test]
    fn hotkey_messages_charge_their_payloads() {
        let data = Msg::HotKeyData {
            tuples: vec![Tuple::new(0, 0); 5].into(),
            tuple_bytes: 116,
        };
        assert_eq!(data.wire_bytes(), CONTROL_BYTES + 580);
        let plan = Msg::HotKeyPlan {
            positions: vec![1, 2, 3],
            members: vec![10, 11],
        };
        assert_eq!(plan.wire_bytes(), CONTROL_BYTES + 20);
        let mut sk = SpaceSaving::new(8);
        sk.observe(42);
        let upd = Msg::SketchUpdate { sketch: sk };
        assert_eq!(upd.wire_bytes(), CONTROL_BYTES + 24);
        assert_eq!(
            Msg::HotKeyDone { sent_tuples: 9 }.wire_bytes(),
            CONTROL_BYTES
        );
    }

    #[test]
    fn histogram_wire_picks_smaller_encoding() {
        // Dense wins: all cells non-zero.
        let h = Histogram {
            counts: vec![1; 100],
        };
        assert_eq!(h.wire_bytes(), CONTROL_BYTES + 800);
        // Sparse wins: one non-zero cell out of 100.
        let mut counts = vec![0u64; 100];
        counts[50] = 7;
        let h = Histogram { counts };
        assert_eq!(h.wire_bytes(), CONTROL_BYTES + 12);
    }
}
