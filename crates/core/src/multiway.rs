//! Multi-way join pipelines — the paper's future-work direction (§6):
//! "We also plan to expand our work to multi-way join operations ... In a
//! multi-way join operation, performance can be improved if results from
//! joins at intermediate levels are maintained in memory."
//!
//! A [`MultiwayPlan`] evaluates a left-deep chain
//! `((R₀ ⋈ R₁) ⋈ R₂) ⋈ …` as a sequence of expanding joins. Each level's
//! output cardinality sizes the intermediate relation that streams into the
//! next level (the data sources generate relations on the fly, which is
//! precisely how a pipelined intermediate behaves), and the intermediate's
//! payload is the concatenation of its inputs' payloads. With
//! [`MultiwayPlan::keep_nodes_warm`] the next level starts on the previous
//! level's *expanded* node set — §6's "maintained in memory" idea — instead
//! of tearing down to the original allocation and re-expanding.
//!
//! The intermediate relations are synthetic stand-ins with the measured
//! cardinality (the simulator does not materialize join payloads), so
//! multi-way *match counts* beyond the first level are workload-model
//! outputs, not oracle-verifiable joins; timings and expansion behaviour
//! are the quantities of interest.

use crate::config::JoinConfig;
use crate::report::JoinReport;
use crate::runner::{JoinError, JoinRunner};
use ehj_data::RelationSpec;

/// A left-deep multi-way join plan.
#[derive(Debug, Clone)]
pub struct MultiwayPlan {
    /// Template configuration: algorithm, cluster, costs, chunking. Its
    /// `r`/`s` fields are overwritten per level.
    pub base: JoinConfig,
    /// The relations, joined left-deep in order. Must share the base's
    /// attribute domain; lengths ≥ 2.
    pub relations: Vec<RelationSpec>,
    /// Start each level after the first on the previous level's final node
    /// count (the paper's keep-intermediates-in-memory idea) instead of the
    /// base allocation.
    pub keep_nodes_warm: bool,
}

/// The outcome of a multi-way pipeline.
#[derive(Debug, Clone)]
pub struct MultiwayReport {
    /// Per-level reports, in execution order.
    pub stages: Vec<JoinReport>,
    /// Sum of the stages' total times (levels run back-to-back).
    pub total_secs: f64,
    /// The final level's output cardinality.
    pub final_matches: u64,
}

impl MultiwayPlan {
    /// Creates a plan over `relations` using `base` as the template.
    #[must_use]
    pub fn new(base: JoinConfig, relations: Vec<RelationSpec>) -> Self {
        Self {
            base,
            relations,
            keep_nodes_warm: true,
        }
    }

    /// Validates the plan.
    ///
    /// # Errors
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.relations.len() < 2 {
            return Err("a multi-way plan needs at least two relations".into());
        }
        for (i, r) in self.relations.iter().enumerate() {
            if r.domain != self.relations[0].domain {
                return Err(format!(
                    "relation {i} has domain {} but relation 0 has {} — multi-way joins need one join-attribute domain",
                    r.domain, self.relations[0].domain
                ));
            }
        }
        Ok(())
    }

    /// Runs the pipeline level by level.
    ///
    /// # Errors
    /// Propagates configuration and runtime errors from any level.
    pub fn run(&self) -> Result<MultiwayReport, JoinError> {
        self.validate().map_err(JoinError::Config)?;
        let mut stages: Vec<JoinReport> = Vec::with_capacity(self.relations.len() - 1);
        let mut build = self.relations[0];
        for (level, &probe) in self.relations[1..].iter().enumerate() {
            let mut cfg = self.base.clone();
            // The intermediate carries both sides' payloads; both relations
            // of one join must share a schema, so the probe side is
            // materialized at the same width.
            cfg.r = build;
            cfg.s = probe;
            let width = build.schema.payload_bytes.max(probe.schema.payload_bytes);
            cfg.r = cfg.r.with_payload(width);
            cfg.s = cfg.s.with_payload(width);
            if self.keep_nodes_warm {
                if let Some(prev) = stages.last() {
                    cfg.initial_nodes = prev.final_nodes.min(cfg.cluster.len()).max(1);
                }
            }
            let report = JoinRunner::run(&cfg)?;
            // Synthesize the next level's build side from this level's
            // output: measured cardinality, concatenated payload, a fresh
            // derived stream over the shared domain.
            let payload = build
                .schema
                .payload_bytes
                .saturating_add(probe.schema.payload_bytes);
            build = RelationSpec::uniform(
                report.matches,
                build
                    .seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(level as u64 + 1),
            )
            .with_domain(build.domain)
            .with_payload(payload);
            stages.push(report);
        }
        let total_secs = stages.iter().map(|s| s.times.total_secs).sum();
        let final_matches = stages.last().map_or(0, |s| s.matches);
        Ok(MultiwayReport {
            stages,
            total_secs,
            final_matches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;

    fn base() -> JoinConfig {
        let mut cfg = JoinConfig::paper_scaled(Algorithm::Hybrid, 1000);
        let domain = 1 << 12;
        cfg.r = cfg.r.with_domain(domain);
        cfg.s = cfg.s.with_domain(domain);
        cfg.positions = (domain / 4) as u32;
        cfg
    }

    fn rel(tuples: u64, seed: u64) -> RelationSpec {
        RelationSpec::uniform(tuples, seed).with_domain(1 << 12)
    }

    #[test]
    fn two_level_pipeline_runs_and_chains_cardinality() {
        let plan = MultiwayPlan::new(base(), vec![rel(8000, 1), rel(8000, 2), rel(8000, 3)]);
        let report = plan.run().expect("pipeline runs");
        assert_eq!(report.stages.len(), 2);
        // Level 2's build side is level 1's output cardinality.
        assert_eq!(report.stages[1].build_tuples, report.stages[0].matches);
        assert_eq!(report.final_matches, report.stages[1].matches);
        assert!(report.total_secs > 0.0);
    }

    #[test]
    fn warm_start_reuses_the_expanded_node_set() {
        let relations = vec![rel(20_000, 1), rel(20_000, 2), rel(20_000, 3)];
        let mut plan = MultiwayPlan::new(base(), relations.clone());
        plan.keep_nodes_warm = true;
        let warm = plan.run().expect("warm runs");
        plan.keep_nodes_warm = false;
        let cold = plan.run().expect("cold runs");
        // Stage 1 is identical either way.
        assert_eq!(
            warm.stages[0].final_nodes, cold.stages[0].final_nodes,
            "first level does not differ"
        );
        // The warm second stage starts where the first ended.
        assert_eq!(
            warm.stages[1].initial_nodes,
            warm.stages[0].final_nodes.min(24)
        );
        assert_eq!(cold.stages[1].initial_nodes, 4);
    }

    #[test]
    fn intermediate_payload_concatenates() {
        let mut r0 = rel(5000, 1);
        r0.schema = ehj_data::Schema::with_payload(100);
        let mut r1 = rel(5000, 2);
        r1.schema = ehj_data::Schema::with_payload(100);
        let mut r2 = rel(5000, 3);
        r2.schema = ehj_data::Schema::with_payload(100);
        let plan = MultiwayPlan::new(base(), vec![r0, r1, r2]);
        let report = plan.run().expect("runs");
        // The second stage's build side carries the concatenated payload.
        // (Visible through byte accounting: its network traffic per tuple
        // grows; here we simply assert the run stayed coherent.)
        assert_eq!(report.stages.len(), 2);
    }

    #[test]
    fn rejects_degenerate_plans() {
        let plan = MultiwayPlan::new(base(), vec![rel(100, 1)]);
        assert!(plan.validate().is_err());
        let mismatched = vec![rel(100, 1), rel(100, 2).with_domain(1 << 8)];
        let plan = MultiwayPlan::new(base(), mismatched);
        assert!(matches!(plan.run(), Err(JoinError::Config(_))));
    }

    #[test]
    fn empty_intermediate_short_circuits_gracefully() {
        // An empty R0 produces zero matches at level 1; level 2 then builds
        // from an empty relation and must still complete.
        let plan = MultiwayPlan::new(base(), vec![rel(0, 1), rel(1000, 2), rel(1000, 3)]);
        let report = plan.run().expect("runs");
        assert_eq!(report.final_matches, 0);
    }
}
