//! Shared scripted [`Context`] for actor unit tests: records every effect
//! so tests can drive one actor through a protocol exchange by hand.

use crate::msg::Msg;
use ehj_sim::{ActorId, Context, SimTime};

/// A recording context: sends and schedules are captured, CPU advances a
/// virtual clock, disk traffic is tallied.
pub(crate) struct ScriptCtx {
    pub me: ActorId,
    pub now: SimTime,
    /// Every `send` and `schedule` in order (`schedule` targets `me`).
    pub sent: Vec<(ActorId, Msg)>,
    pub disk_written: u64,
    pub disk_read: u64,
    pub stopped: bool,
}

impl ScriptCtx {
    pub fn new(me: ActorId) -> Self {
        Self {
            me,
            now: SimTime::ZERO,
            sent: Vec::new(),
            disk_written: 0,
            disk_read: 0,
            stopped: false,
        }
    }

    /// Drains the captured messages.
    #[allow(dead_code)]
    pub fn take_sent(&mut self) -> Vec<(ActorId, Msg)> {
        std::mem::take(&mut self.sent)
    }

    /// Messages captured for one recipient.
    pub fn sent_to(&self, to: ActorId) -> Vec<&Msg> {
        self.sent
            .iter()
            .filter(|(t, _)| *t == to)
            .map(|(_, m)| m)
            .collect()
    }

    /// Count of captured messages matching a predicate.
    pub fn count(&self, pred: impl Fn(&Msg) -> bool) -> usize {
        self.sent.iter().filter(|(_, m)| pred(m)).count()
    }
}

impl Context<Msg> for ScriptCtx {
    fn now(&self) -> SimTime {
        self.now
    }
    fn me(&self) -> ActorId {
        self.me
    }
    fn send(&mut self, to: ActorId, msg: Msg) {
        self.sent.push((to, msg));
    }
    fn schedule(&mut self, _delay: SimTime, msg: Msg) {
        let me = self.me;
        self.sent.push((me, msg));
    }
    fn consume_cpu(&mut self, amount: SimTime) {
        self.now += amount;
    }
    fn disk_read(&mut self, bytes: u64) {
        self.disk_read += bytes;
    }
    fn disk_write(&mut self, bytes: u64) {
        self.disk_written += bytes;
    }
    fn disk_append(&mut self, bytes: u64) {
        self.disk_written += bytes;
    }
    fn stop(&mut self) {
        self.stopped = true;
    }
}
