//! The high-level entry point: wire up a cluster, run one join, return the
//! report.
//!
//! [`JoinRunner::run_with`] also owns the tracing plumbing: it builds the
//! [`Tracer`] shared by the scheduler, sources and join nodes, always keeps
//! a bounded ring of recent events so every [`JoinError`] carries a
//! diagnostic tail, folds the rollup counters into the final
//! [`JoinReport`], and optionally streams JSONL to a file.

use crate::config::JoinConfig;
use crate::join_node::JoinNode;
use crate::msg::Msg;
use crate::report::JoinReport;
use crate::scheduler::Scheduler;
use crate::source::DataSource;
use crate::topology::Topology;
use ehj_metrics::{
    sample_once, ClockKind, JsonlSink, MetricsMonitor, MetricsRegistry, MetricsReport, Phase,
    RingSink, RollupSink, StopCause, TraceEvent, TraceKind, TraceLevel, TraceSink, Tracer,
};
use ehj_sim::{Actor, Engine, EngineConfig, EngineError, StopReason, ThreadedEngine};
use ehj_storage::{FileBackend, MemBackend, SpillBackend};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Duration;

/// How many trailing trace events are kept for error diagnostics.
const ERROR_TAIL_EVENTS: usize = 64;

/// How many of those the `Display` impl prints.
const ERROR_TAIL_SHOWN: usize = 8;

/// Sampling period of the threaded backend's metrics monitor.
const MONITOR_INTERVAL: Duration = Duration::from_millis(5);

/// Which runtime executes the join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Deterministic discrete-event simulation with the calibrated
    /// 2004-cluster cost model (the figures' backend).
    #[default]
    Simulated,
    /// A fixed work-stealing worker pool over bounded batch mailboxes,
    /// with real temp-file spills (wall-clock benchmarking backend).
    Threaded,
}

/// Errors surfaced by [`JoinRunner`]. The engine and stall variants carry
/// the tail of the structured trace so a failed run is diagnosable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinError {
    /// The configuration failed validation.
    Config(String),
    /// The simulation engine aborted (event-budget livelock guard).
    Engine {
        /// The underlying engine error.
        source: EngineError,
        /// Last trace events before the abort (empty when tracing is off).
        trace: Vec<TraceEvent>,
    },
    /// The run ended without producing a report — a protocol stall (or an
    /// exceeded virtual-time budget).
    Stalled {
        /// Last trace events before the stall (empty when tracing is off).
        trace: Vec<TraceEvent>,
    },
    /// A malformed or stale control message was rejected (see
    /// [`TraceKind::ProtocolFault`]); the query quiesced instead of
    /// letting the value corrupt — or panic — the scheduler.
    ///
    /// [`TraceKind::ProtocolFault`]: ehj_metrics::TraceKind::ProtocolFault
    Protocol {
        /// Human-readable description of the offending message.
        detail: String,
        /// Last trace events before the fault (includes the fault itself).
        trace: Vec<TraceEvent>,
    },
    /// The service refused to admit the query (memory quota could not be
    /// reserved within the admission patience, or could never be).
    Admission(String),
    /// The query was cancelled before it produced a report.
    Cancelled {
        /// Last trace events before the cancel (empty when tracing is off).
        trace: Vec<TraceEvent>,
    },
}

impl JoinError {
    /// The diagnostic trace tail, if this error carries one.
    #[must_use]
    pub fn trace_tail(&self) -> &[TraceEvent] {
        match self {
            Self::Config(_) | Self::Admission(_) => &[],
            Self::Engine { trace, .. }
            | Self::Stalled { trace }
            | Self::Protocol { trace, .. }
            | Self::Cancelled { trace } => trace,
        }
    }

    /// Builds the no-report error: a [`JoinError::Protocol`] when the tail
    /// records a rejected control message, a [`JoinError::Stalled`]
    /// otherwise.
    pub(crate) fn from_silent_end(trace: Vec<TraceEvent>) -> Self {
        let detail = trace
            .iter()
            .rev()
            .find(|ev| matches!(ev.kind, ehj_metrics::TraceKind::ProtocolFault { .. }))
            .map(|ev| ev.kind.describe());
        match detail {
            Some(detail) => Self::Protocol { detail, trace },
            None => Self::Stalled { trace },
        }
    }

    fn fmt_tail(trace: &[TraceEvent], f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if trace.is_empty() {
            return write!(f, " (no trace recorded; raise the trace level)");
        }
        let shown = &trace[trace.len().saturating_sub(ERROR_TAIL_SHOWN)..];
        write!(f, "; last {} trace events:", shown.len())?;
        for ev in shown {
            write!(
                f,
                "\n  [{:>12.6}s] actor {:>3} {:<9} {}",
                ev.at_nanos as f64 / 1e9,
                ev.node,
                ev.phase.name(),
                ev.kind.describe()
            )?;
        }
        Ok(())
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid configuration: {e}"),
            Self::Engine { source, trace } => {
                write!(f, "engine error: {source}")?;
                Self::fmt_tail(trace, f)
            }
            Self::Stalled { trace } => {
                write!(f, "join protocol stalled without a report")?;
                Self::fmt_tail(trace, f)
            }
            Self::Protocol { detail, trace } => {
                write!(f, "malformed control message rejected: {detail}")?;
                Self::fmt_tail(trace, f)
            }
            Self::Admission(e) => write!(f, "query not admitted: {e}"),
            Self::Cancelled { trace } => {
                write!(f, "query cancelled before completion")?;
                Self::fmt_tail(trace, f)
            }
        }
    }
}

impl std::error::Error for JoinError {}

/// Execution options beyond the [`JoinConfig`] itself.
pub struct RunOptions {
    /// Which runtime executes the join.
    pub backend: Backend,
    /// Worker-pool size for the threaded backend (`None` = available
    /// parallelism). Ignored by the simulated backend.
    pub threads: Option<usize>,
    /// How much to trace. At [`TraceLevel::Summary`] and above, the runner
    /// always keeps a diagnostic ring and a rollup; [`TraceLevel::Off`]
    /// makes every emit a no-op.
    pub trace_level: TraceLevel,
    /// Stream every event as one JSON object per line to this file.
    pub trace_out: Option<PathBuf>,
    /// Additional sinks (tests, embedders).
    pub extra_sinks: Vec<Arc<dyn TraceSink>>,
    /// Whether the live metrics registry records (sharded counters,
    /// histograms, gauges). `false` hands every layer no-op instruments —
    /// the configuration the `baseline --obs` overhead gate compares
    /// against. Never affects simulated observables either way.
    pub metrics: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            backend: Backend::Simulated,
            threads: None,
            trace_level: TraceLevel::Summary,
            trace_out: None,
            extra_sinks: Vec::new(),
            metrics: true,
        }
    }
}

impl std::fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("backend", &self.backend)
            .field("threads", &self.threads)
            .field("trace_level", &self.trace_level)
            .field("trace_out", &self.trace_out)
            .field("extra_sinks", &self.extra_sinks.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl RunOptions {
    /// Options for `backend` with default tracing.
    #[must_use]
    pub fn on(backend: Backend) -> Self {
        Self {
            backend,
            ..Self::default()
        }
    }
}

/// Everything the runner wires into a run's tracer. Also used by the
/// multi-tenant service, which builds one harness per admitted query.
pub(crate) struct TraceHarness {
    pub(crate) tracer: Tracer,
    ring: Option<Arc<RingSink>>,
    rollup: Option<Arc<RollupSink>>,
}

impl TraceHarness {
    pub(crate) fn build(opts: &RunOptions, clock: ClockKind) -> Result<Self, JoinError> {
        if opts.trace_level == TraceLevel::Off {
            return Ok(Self {
                tracer: Tracer::off(),
                ring: None,
                rollup: None,
            });
        }
        let ring = Arc::new(RingSink::new(ERROR_TAIL_EVENTS));
        let rollup = Arc::new(RollupSink::default());
        let mut sinks: Vec<Arc<dyn TraceSink>> =
            vec![Arc::clone(&ring) as _, Arc::clone(&rollup) as _];
        if let Some(path) = &opts.trace_out {
            let file = std::fs::File::create(path).map_err(|e| {
                JoinError::Config(format!("cannot open trace output {}: {e}", path.display()))
            })?;
            let mut writer = std::io::BufWriter::new(file);
            // First line declares which clock stamped `t` in every event
            // below (the timestamps are backend-dependent).
            writeln!(writer, "{}", clock.header_line()).map_err(|e| {
                JoinError::Config(format!("cannot write trace output {}: {e}", path.display()))
            })?;
            sinks.push(Arc::new(JsonlSink::new(Box::new(writer))) as _);
        }
        sinks.extend(opts.extra_sinks.iter().cloned());
        Ok(Self {
            tracer: Tracer::new(opts.trace_level, sinks),
            ring: Some(ring),
            rollup: Some(rollup),
        })
    }

    pub(crate) fn tail(&self) -> Vec<TraceEvent> {
        self.ring.as_ref().map(|r| r.tail()).unwrap_or_default()
    }

    /// Records the stop reason, folds the rollup into the report, and
    /// flushes every sink.
    pub(crate) fn finish(&self, at_nanos: u64, cause: StopCause, report: Option<&mut JoinReport>) {
        self.tracer.emit(
            at_nanos,
            0,
            Phase::Probe,
            TraceKind::EngineStop { reason: cause },
        );
        if let (Some(rollup), Some(report)) = (self.rollup.as_ref(), report) {
            report.trace = rollup.snapshot();
        }
        self.tracer.flush();
    }
}

/// Runs joins described by a [`JoinConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinRunner;

impl JoinRunner {
    /// Runs one join on the simulated backend with default tracing.
    ///
    /// # Errors
    /// See [`JoinError`].
    pub fn run(cfg: &JoinConfig) -> Result<JoinReport, JoinError> {
        Self::run_with(cfg, &RunOptions::default())
    }

    /// Runs one join on the chosen backend with default tracing.
    ///
    /// # Errors
    /// See [`JoinError`].
    pub fn run_on(cfg: &JoinConfig, backend: Backend) -> Result<JoinReport, JoinError> {
        Self::run_with(cfg, &RunOptions::on(backend))
    }

    /// Runs one join with full control over backend and tracing.
    ///
    /// # Errors
    /// See [`JoinError`].
    pub fn run_with(cfg: &JoinConfig, opts: &RunOptions) -> Result<JoinReport, JoinError> {
        cfg.validate().map_err(JoinError::Config)?;
        let cfg = Arc::new(cfg.clone());
        let topo = Topology::standard(cfg.sources, cfg.cluster.len());
        let result: Arc<Mutex<Option<JoinReport>>> = Arc::new(Mutex::new(None));
        let clock = match opts.backend {
            Backend::Simulated => ClockKind::Virtual,
            Backend::Threaded => ClockKind::Wall,
        };
        let harness = TraceHarness::build(opts, clock)?;
        let registry = if opts.metrics {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        };
        match opts.backend {
            Backend::Simulated => Self::run_simulated(&cfg, topo, &result, &harness, &registry),
            Backend::Threaded => Self::run_threaded(
                &cfg,
                topo,
                &result,
                &harness,
                &registry,
                opts.threads.unwrap_or(0),
            ),
        }
    }

    fn run_simulated(
        cfg: &Arc<JoinConfig>,
        topo: Topology,
        result: &Arc<Mutex<Option<JoinReport>>>,
        harness: &TraceHarness,
        registry: &MetricsRegistry,
    ) -> Result<JoinReport, JoinError> {
        let mut engine: Engine<Msg> = Engine::new(EngineConfig {
            net: cfg.net,
            disk: cfg.disk,
            max_events: cfg.max_events,
            max_time: cfg.max_sim_time,
        });
        for actor in build_query_actors::<MemBackend>(cfg, &topo, result, &harness.tracer, registry)
        {
            engine.add_actor(actor);
        }
        let summary = match engine.run() {
            Ok(s) => s,
            Err(source) => {
                harness.finish(0, StopCause::EventLimit, None);
                return Err(JoinError::Engine {
                    source,
                    trace: harness.tail(),
                });
            }
        };
        let end = summary.end_time.as_nanos();
        match summary.reason {
            StopReason::Stopped => {}
            reason => {
                let cause = match reason {
                    StopReason::TimeLimit => StopCause::TimeLimit,
                    _ => StopCause::Quiescent,
                };
                harness.finish(end, cause, None);
                return Err(JoinError::from_silent_end(harness.tail()));
            }
        }
        let report = result.lock().expect("report lock").take();
        let Some(mut report) = report else {
            harness.finish(end, StopCause::Quiescent, None);
            return Err(JoinError::from_silent_end(harness.tail()));
        };
        report.sim_events = summary.events;
        report.net_bytes = summary.net_bytes;
        report.disk_bytes = summary.disk_bytes;
        // A background monitor cannot observe virtual time; one end-of-run
        // sample stands in for the threaded backend's periodic ones.
        sample_once(registry, &harness.tracer, end, 0);
        report.metrics = MetricsReport::from_snapshot(&registry.snapshot());
        harness.finish(end, StopCause::Completed, Some(&mut report));
        Ok(report)
    }

    fn run_threaded(
        cfg: &Arc<JoinConfig>,
        topo: Topology,
        result: &Arc<Mutex<Option<JoinReport>>>,
        harness: &TraceHarness,
        registry: &MetricsRegistry,
        threads: usize,
    ) -> Result<JoinReport, JoinError> {
        let mut engine: ThreadedEngine<Msg> = ThreadedEngine::new()
            .with_workers(threads)
            .with_metrics(registry.clone());
        let tracer = &harness.tracer;
        for actor in build_query_actors::<FileBackend>(cfg, &topo, result, tracer, registry) {
            engine.add_actor(actor);
        }
        let monitor = MetricsMonitor::start(registry.clone(), tracer.clone(), MONITOR_INTERVAL);
        let (summary, _actors) = engine.run();
        monitor.stop();
        let end = summary.elapsed.as_nanos();
        harness.tracer.emit(
            end,
            0,
            Phase::Probe,
            TraceKind::ExecutorStats {
                workers: summary.exec.workers,
                steals: summary.exec.steals,
                parks: summary.exec.parks,
                overflows: summary.exec.overflows,
                max_depth: summary.exec.max_mailbox_depth,
                timer_fires: summary.exec.timer_fires,
            },
        );
        let report = result.lock().expect("report lock").take();
        let Some(mut report) = report else {
            harness.finish(end, StopCause::Quiescent, None);
            return Err(JoinError::from_silent_end(harness.tail()));
        };
        // Under the threaded backend the phase timings accumulated from
        // wall-clock `now()`; total and traffic are authoritative from the
        // engine (every send is charged its wire bytes, like the sim net).
        report.times.total_secs = summary.elapsed.as_secs_f64();
        report.net_bytes = summary.net_bytes;
        report.metrics = MetricsReport::from_snapshot(&registry.snapshot());
        harness.finish(end, StopCause::Completed, Some(&mut report));
        Ok(report)
    }
}

/// Builds one query's actor set — scheduler, then sources, then join
/// nodes — in the dense id order `topo` describes. `topo` may be based at
/// any actor id block ([`Topology::with_base`]), which is how the
/// multi-tenant service namespaces concurrent queries on one executor.
/// Shared by the single-query runner (base 0) and the service.
pub(crate) fn build_query_actors<B: SpillBackend + Default + Send + 'static>(
    cfg: &Arc<JoinConfig>,
    topo: &Topology,
    result: &Arc<Mutex<Option<JoinReport>>>,
    tracer: &Tracer,
    registry: &MetricsRegistry,
) -> Vec<Box<dyn Actor<Msg>>> {
    let mut actors: Vec<Box<dyn Actor<Msg>>> = Vec::with_capacity(topo.actor_count());
    actors.push(Box::new(
        Scheduler::new(Arc::clone(cfg), topo.clone(), Arc::clone(result))
            .with_tracer(tracer.clone())
            .with_metrics(&registry.handle_for(0)),
    ));
    for i in 0..cfg.sources {
        actors.push(Box::new(
            DataSource::new(Arc::clone(cfg), i, topo.scheduler).with_tracer(tracer.clone()),
        ));
    }
    for (i, node) in cfg.cluster.node_ids().enumerate() {
        let capacity = cfg.cluster.spec(node).hash_memory_bytes;
        actors.push(Box::new(
            JoinNode::<B>::new(
                Arc::clone(cfg),
                topo.scheduler,
                topo.node_actor(node),
                capacity,
            )
            .with_tracer(tracer.clone())
            .with_metrics(&registry.handle_for(i)),
        ));
    }
    debug_assert_eq!(actors.len(), topo.actor_count());
    actors
}
