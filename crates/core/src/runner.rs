//! The high-level entry point: wire up a cluster, run one join, return the
//! report.

use crate::config::JoinConfig;
use crate::join_node::JoinNode;
use crate::msg::Msg;
use crate::report::JoinReport;
use crate::scheduler::Scheduler;
use crate::source::DataSource;
use crate::topology::Topology;
use ehj_sim::{Engine, EngineConfig, EngineError, StopReason, ThreadedEngine};
use ehj_storage::{FileBackend, MemBackend};
use parking_lot::Mutex;
use std::sync::Arc;

/// Which runtime executes the join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Deterministic discrete-event simulation with the calibrated
    /// 2004-cluster cost model (the figures' backend).
    #[default]
    Simulated,
    /// Real OS threads over crossbeam channels, with real temp-file spills
    /// (wall-clock benchmarking backend).
    Threaded,
}

/// Errors surfaced by [`JoinRunner`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinError {
    /// The configuration failed validation.
    Config(String),
    /// The simulation engine aborted (event-budget livelock guard).
    Engine(EngineError),
    /// The run ended without producing a report — a protocol stall.
    Stalled,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid configuration: {e}"),
            Self::Engine(e) => write!(f, "engine error: {e}"),
            Self::Stalled => write!(f, "join protocol stalled without a report"),
        }
    }
}

impl std::error::Error for JoinError {}

/// Runs joins described by a [`JoinConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinRunner;

impl JoinRunner {
    /// Runs one join on the simulated backend.
    ///
    /// # Errors
    /// See [`JoinError`].
    pub fn run(cfg: &JoinConfig) -> Result<JoinReport, JoinError> {
        Self::run_on(cfg, Backend::Simulated)
    }

    /// Runs one join on the chosen backend.
    ///
    /// # Errors
    /// See [`JoinError`].
    pub fn run_on(cfg: &JoinConfig, backend: Backend) -> Result<JoinReport, JoinError> {
        cfg.validate().map_err(JoinError::Config)?;
        let cfg = Arc::new(cfg.clone());
        let topo = Topology::standard(cfg.sources, cfg.cluster.len());
        let result: Arc<Mutex<Option<JoinReport>>> = Arc::new(Mutex::new(None));
        match backend {
            Backend::Simulated => Self::run_simulated(&cfg, topo, &result),
            Backend::Threaded => Self::run_threaded(&cfg, topo, &result),
        }
    }

    fn run_simulated(
        cfg: &Arc<JoinConfig>,
        topo: Topology,
        result: &Arc<Mutex<Option<JoinReport>>>,
    ) -> Result<JoinReport, JoinError> {
        let mut engine: Engine<Msg> = Engine::new(EngineConfig {
            net: cfg.net,
            disk: cfg.disk,
            max_events: cfg.max_events,
            max_time: None,
        });
        let sched = engine.add_actor(Box::new(Scheduler::new(
            Arc::clone(cfg),
            topo.clone(),
            Arc::clone(result),
        )));
        debug_assert_eq!(sched, topo.scheduler);
        for i in 0..cfg.sources {
            let id = engine.add_actor(Box::new(DataSource::new(
                Arc::clone(cfg),
                i,
                topo.scheduler,
            )));
            debug_assert_eq!(id, topo.sources[i]);
        }
        for node in cfg.cluster.node_ids() {
            let capacity = cfg.cluster.spec(node).hash_memory_bytes;
            let id = engine.add_actor(Box::new(JoinNode::<MemBackend>::new(
                Arc::clone(cfg),
                topo.scheduler,
                topo.node_actor(node),
                capacity,
            )));
            debug_assert_eq!(id, topo.node_actor(node));
        }
        let summary = engine.run().map_err(JoinError::Engine)?;
        if summary.reason != StopReason::Stopped {
            return Err(JoinError::Stalled);
        }
        let mut report = result.lock().take().ok_or(JoinError::Stalled)?;
        report.sim_events = summary.events;
        report.net_bytes = summary.net_bytes;
        report.disk_bytes = summary.disk_bytes;
        Ok(report)
    }

    fn run_threaded(
        cfg: &Arc<JoinConfig>,
        topo: Topology,
        result: &Arc<Mutex<Option<JoinReport>>>,
    ) -> Result<JoinReport, JoinError> {
        let mut engine: ThreadedEngine<Msg> = ThreadedEngine::new();
        let sched = engine.add_actor(Box::new(Scheduler::new(
            Arc::clone(cfg),
            topo.clone(),
            Arc::clone(result),
        )));
        debug_assert_eq!(sched, topo.scheduler);
        for i in 0..cfg.sources {
            let id = engine.add_actor(Box::new(DataSource::new(
                Arc::clone(cfg),
                i,
                topo.scheduler,
            )));
            debug_assert_eq!(id, topo.sources[i]);
        }
        for node in cfg.cluster.node_ids() {
            let capacity = cfg.cluster.spec(node).hash_memory_bytes;
            let id = engine.add_actor(Box::new(JoinNode::<FileBackend>::new(
                Arc::clone(cfg),
                topo.scheduler,
                topo.node_actor(node),
                capacity,
            )));
            debug_assert_eq!(id, topo.node_actor(node));
        }
        let (elapsed, _actors) = engine.run();
        let mut report = result.lock().take().ok_or(JoinError::Stalled)?;
        // Under the threaded backend the phase timings accumulated from
        // wall-clock `now()`; total is authoritative from the engine.
        report.times.total_secs = elapsed.as_secs_f64();
        Ok(report)
    }
}
