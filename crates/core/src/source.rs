//! The data-source actor.
//!
//! §4.1.2: a data source provides the elements of R and S to the join
//! processes, keeping one buffer per join process; tuples are routed into
//! buffers by hash value and a full buffer is shipped as one chunk. Sources
//! react to scheduler routing updates as the algorithms expand, and in the
//! probe phase of the replication-based algorithm they broadcast each tuple
//! to every replica of its range (the broadcast ships one shared
//! [`TupleBatch`] — an `Arc` clone per replica, never a tuple copy).
//!
//! ## Flow control
//!
//! The paper's sources wrote to blocking TCP sockets, so a source could
//! never run arbitrarily far ahead of its receivers: when a join node
//! stopped draining, the sender stalled, and a routing update took effect
//! on all data still inside the source. The simulation reproduces that with
//! a credit protocol: at most [`JoinConfig::chunk_tuples`]-sized
//! `CREDIT_CHUNKS` chunks are in flight per destination; every delivered
//! chunk is acknowledged with [`Msg::DataAck`]; chunks awaiting credit stay
//! in the source and are *re-routed* when the routing table changes, and
//! generation pauses while too much output is blocked. Without this, a
//! simulated source would commit every chunk's destination before the first
//! `memory full` round-trip completed, grossly inflating forwarding
//! traffic relative to the real system.

use crate::config::JoinConfig;
use crate::msg::Msg;
use crate::routing::RoutingTable;
use ehj_data::{SourceGenerator, Tuple, TupleBatch};
use ehj_hash::{PositionSpace, SpaceSaving};
use ehj_metrics::{CommCategory, CommCounters, Phase, TraceKind, Tracer};
use ehj_sim::{Actor, ActorId, Context, SimTime};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Tuples generated per self-scheduled generation step (at least one chunk).
const GEN_BATCH_MIN: u64 = 1024;

/// Maximum unacknowledged chunks in flight per destination (the emulated
/// TCP receive window).
pub const CREDIT_CHUNKS: usize = 4;

/// Generation pauses while more than this many chunks wait for credit.
const MAX_BLOCKED_CHUNKS: usize = 16;

/// One data-source process.
pub struct DataSource {
    cfg: Arc<JoinConfig>,
    index: usize,
    scheduler: ActorId,
    space: PositionSpace,
    phase: Phase,
    gen: Option<SourceGenerator>,
    routing: Option<RoutingTable>,
    routing_version: u64,
    /// Accumulation buffers (not-yet-full chunks), keyed by *destination
    /// set*: a full buffer freezes into one immutable [`TupleBatch`] that is
    /// shipped to every member, so a probe broadcast to N replicas clones an
    /// `Arc` N times instead of deep-copying the tuples. In the build phase
    /// every set is a single node and this degenerates to per-destination
    /// buffering.
    buffers: HashMap<Vec<ActorId>, Vec<Tuple>>,
    /// Per-destination credits remaining.
    credits: HashMap<ActorId, usize>,
    /// Full chunks waiting for credit, per destination.
    blocked: HashMap<ActorId, VecDeque<TupleBatch>>,
    gen_paused: bool,
    draining: bool,
    phase_done_sent: bool,
    sent_chunks: u64,
    sent_tuples: u64,
    comm: CommCounters,
    dest_scratch: Vec<ActorId>,
    /// Bulk-hash output buffer: one routed position per generated tuple,
    /// reused across generation batches.
    pos_scratch: Vec<u32>,
    /// Space-saving sketch over routed build positions (hot-key detection,
    /// DESIGN §4i). `None` unless `cfg.hot_keys.enabled`.
    sketch: Option<SpaceSaving>,
    /// Observed-tuple count at which the next cumulative sketch snapshot
    /// goes to the scheduler (doubles after each send).
    sketch_next_send: u64,
    /// Round-robin ticket for hot-position routing, seeded by the source
    /// index so concurrent sources start on different replicas.
    hot_ticket: u64,
    tracer: Tracer,
}

impl DataSource {
    /// Creates source number `index` (of `cfg.sources`).
    #[must_use]
    pub fn new(cfg: Arc<JoinConfig>, index: usize, scheduler: ActorId) -> Self {
        let space = PositionSpace::new(cfg.positions, cfg.r.domain, cfg.hasher);
        let chunk = cfg.chunk_tuples as u64;
        Self {
            cfg,
            index,
            scheduler,
            space,
            phase: Phase::Build,
            gen: None,
            routing: None,
            routing_version: 0,
            buffers: HashMap::new(),
            credits: HashMap::new(),
            blocked: HashMap::new(),
            gen_paused: false,
            draining: false,
            phase_done_sent: false,
            sent_chunks: 0,
            sent_tuples: 0,
            comm: CommCounters::new(chunk),
            dest_scratch: Vec::new(),
            pos_scratch: Vec::new(),
            sketch: None,
            sketch_next_send: u64::MAX,
            hot_ticket: index as u64,
            tracer: Tracer::off(),
        }
    }

    /// Attaches a tracer; events are emitted through it from then on.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    fn tuple_bytes(&self) -> u64 {
        self.cfg.schema().tuple_bytes()
    }

    fn start_phase(
        &mut self,
        ctx: &mut dyn Context<Msg>,
        phase: Phase,
        routing: RoutingTable,
        version: u64,
    ) {
        self.phase = phase;
        self.routing = Some(routing);
        self.routing_version = version;
        self.sent_chunks = 0;
        self.sent_tuples = 0;
        self.buffers.clear();
        self.credits.clear();
        self.blocked.clear();
        self.gen_paused = false;
        self.draining = false;
        self.phase_done_sent = false;
        if phase == Phase::Build && self.cfg.hot_keys.enabled {
            self.sketch = Some(SpaceSaving::new(self.cfg.hot_keys.sketch_capacity));
            // First snapshot once this source alone has seen its share of
            // the global install threshold; then at every doubling.
            self.sketch_next_send =
                (self.cfg.hot_keys.min_total / self.cfg.sources as u64).max(256);
        } else {
            self.sketch = None;
            self.sketch_next_send = u64::MAX;
        }
        let spec = match phase {
            Phase::Build => self.cfg.build_spec(),
            Phase::Probe => self.cfg.probe_spec(),
            Phase::Reshuffle => unreachable!("sources do not generate in reshuffle"),
        };
        self.gen = Some(spec.generator_for_source(self.index, self.cfg.sources));
        ctx.schedule(SimTime::ZERO, Msg::GenStep);
    }

    fn blocked_total(&self) -> usize {
        self.blocked.values().map(VecDeque::len).sum()
    }

    /// Transmits one chunk now (credit already taken).
    fn transmit(&mut self, ctx: &mut dyn Context<Msg>, dest: ActorId, tuples: TupleBatch) {
        self.sent_chunks += 1;
        self.sent_tuples += tuples.len() as u64;
        ctx.send(
            dest,
            Msg::Data {
                phase: self.phase,
                category: CommCategory::SourceDelivery,
                tuples,
                tuple_bytes: self.tuple_bytes(),
            },
        );
    }

    /// Ships a full chunk, or parks it until a credit returns.
    fn ship(&mut self, ctx: &mut dyn Context<Msg>, dest: ActorId, tuples: TupleBatch) {
        let credit = self.credits.entry(dest).or_insert(CREDIT_CHUNKS);
        if *credit > 0 {
            *credit -= 1;
            self.transmit(ctx, dest, tuples);
        } else {
            self.blocked.entry(dest).or_default().push_back(tuples);
        }
    }

    /// Ships one frozen batch to every destination in the set; the tuples
    /// are shared, each send clones the batch's `Arc`.
    fn ship_all(&mut self, ctx: &mut dyn Context<Msg>, dests: &[ActorId], batch: TupleBatch) {
        for &d in dests {
            self.ship(ctx, d, batch.clone());
        }
    }

    /// Buffers one tuple for its destination set, shipping the buffer when
    /// it reaches chunk size.
    fn push(&mut self, ctx: &mut dyn Context<Msg>, dests: &[ActorId], t: Tuple) {
        let buf = match self.buffers.get_mut(dests) {
            Some(buf) => buf,
            // Miss: clone the key once; every later tuple for this set hits
            // the borrowed-slice lookup above.
            None => self.buffers.entry(dests.to_vec()).or_default(),
        };
        buf.push(t);
        if buf.len() >= self.cfg.chunk_tuples {
            let batch = TupleBatch::from(std::mem::take(buf));
            self.ship_all(ctx, dests, batch);
        }
    }

    fn handle_ack(&mut self, ctx: &mut dyn Context<Msg>, from: ActorId) {
        // Release one blocked chunk for this destination, or bank the
        // credit.
        let queued = self.blocked.get_mut(&from).and_then(VecDeque::pop_front);
        if let Some(tuples) = queued {
            self.transmit(ctx, from, tuples);
        } else {
            let credit = self.credits.entry(from).or_insert(0);
            *credit = (*credit + 1).min(CREDIT_CHUNKS);
        }
        if self.gen_paused && self.blocked_total() <= MAX_BLOCKED_CHUNKS / 2 {
            self.gen_paused = false;
            ctx.schedule(SimTime::ZERO, Msg::GenStep);
        }
        self.check_drained(ctx);
    }

    /// On a routing change, pull parked chunks back and re-route their
    /// tuples: the data never left this machine, so it follows the new
    /// table (build phase only; probe routing is final).
    fn reroute_blocked(&mut self, ctx: &mut dyn Context<Msg>) {
        if self.phase != Phase::Build {
            return;
        }
        // Drain in destination-id order: hash-map iteration order would
        // otherwise leak into the re-routed tuple sequence — and from there
        // into table fill order and every downstream simulated observable.
        let mut queues: Vec<(&ActorId, &mut VecDeque<TupleBatch>)> =
            self.blocked.iter_mut().collect();
        queues.sort_unstable_by_key(|&(id, _)| id);
        let mut parked: Vec<Tuple> = Vec::new();
        for (_, q) in queues {
            for batch in q.drain(..) {
                parked.extend_from_slice(&batch);
            }
        }
        if parked.is_empty() {
            return;
        }
        self.route_tuples(ctx, parked);
    }

    fn route_tuples(&mut self, ctx: &mut dyn Context<Msg>, tuples: Vec<Tuple>) {
        let routing = self.routing.take().expect("routing set with phase");
        let tb = self.tuple_bytes();
        let mut dests = std::mem::take(&mut self.dest_scratch);
        let mut positions = std::mem::take(&mut self.pos_scratch);
        let mut routed: u64 = 0;
        let mut fanout_tuples: u64 = 0;
        let mut fanout_copies: u64 = 0;
        // Hash the whole batch once up front (unrolled bulk kernel); both
        // routing shapes below address the precomputed positions.
        self.space.bulk_positions(&tuples, &mut positions);
        for (&t, &pos) in tuples.iter().zip(&positions) {
            // Hot positions are round-robined per source ticket: one copy
            // per build tuple (replication happens in the post-barrier
            // hand-off), one answering replica per probe tuple plus any
            // spilled extras.
            let hot = routing.overlay().filter(|o| o.is_hot(pos));
            match self.phase {
                Phase::Build => {
                    if let Some(sk) = self.sketch.as_mut() {
                        sk.observe(pos as u64);
                    }
                    dests.clear();
                    match hot {
                        Some(o) => {
                            self.hot_ticket += 1;
                            dests.push(o.pick(self.hot_ticket));
                        }
                        None => dests.push(routing.build_dest_pos(pos)),
                    }
                }
                Phase::Probe => match hot {
                    Some(o) => {
                        self.hot_ticket += 1;
                        dests.clear();
                        o.push_probe_dests(self.hot_ticket, &mut dests);
                    }
                    None => routing.probe_dests_pos(pos, &mut dests),
                },
                Phase::Reshuffle => unreachable!(),
            }
            routed += dests.len() as u64;
            if dests.len() > 1 {
                fanout_tuples += 1;
                fanout_copies += dests.len() as u64;
            }
            for i in 0..dests.len() {
                let cat = if i == 0 {
                    CommCategory::SourceDelivery
                } else {
                    CommCategory::ProbeBroadcastExtra
                };
                self.comm.record_tuples(self.phase, cat, 1, tb);
            }
            // `dests` is a local scratch vec, so handing it to the buffer
            // push does not alias the `&mut self` the push needs.
            let dest_list = std::mem::take(&mut dests);
            self.push(ctx, &dest_list, t);
            dests = dest_list;
        }
        self.dest_scratch = dests;
        self.pos_scratch = positions;
        if self.routing.is_none() {
            self.routing = Some(routing);
        }
        ctx.consume_cpu(self.cfg.costs.route_per_tuple * routed);
        if let Some(sk) = self.sketch.as_ref() {
            if sk.total() >= self.sketch_next_send {
                // Cumulative snapshot: the scheduler replaces this source's
                // previous slot, so resending the whole sketch never
                // double-counts.
                ctx.send(self.scheduler, Msg::SketchUpdate { sketch: sk.clone() });
                self.sketch_next_send = self.sketch_next_send.saturating_mul(2);
            }
        }
        if fanout_tuples > 0 {
            // One aggregated event per generation batch keeps the trace
            // proportional to batches, not tuples.
            self.tracer.emit_detail(
                ctx.now().as_nanos(),
                ctx.me(),
                self.phase,
                TraceKind::ProbeFanout {
                    tuples: fanout_tuples,
                    copies: fanout_copies,
                },
            );
        }
    }

    fn gen_step(&mut self, ctx: &mut dyn Context<Msg>) {
        if self.gen_paused {
            return;
        }
        if self.blocked_total() > MAX_BLOCKED_CHUNKS {
            // Emulated blocking send: stall until receivers drain.
            self.gen_paused = true;
            return;
        }
        let Some(gen) = self.gen.as_mut() else {
            return;
        };
        let batch = GEN_BATCH_MIN.max(self.cfg.chunk_tuples as u64);
        let mut produced = Vec::new();
        let n = gen.fill(batch, &mut produced);
        if n > 0 {
            ctx.consume_cpu(self.cfg.costs.gen_per_tuple * n);
            // `route_tuples` double-counts probe broadcasts by design: the
            // duplicate copies are the paper's extra probe communication.
            self.route_tuples(ctx, produced);
        }
        let remaining = self.gen.as_ref().map_or(0, SourceGenerator::remaining);
        if remaining > 0 {
            ctx.schedule(SimTime::ZERO, Msg::GenStep);
        } else {
            self.finish_phase(ctx);
        }
    }

    fn finish_phase(&mut self, ctx: &mut dyn Context<Msg>) {
        self.gen = None;
        self.draining = true;
        // check_drained flushes the accumulation buffers (credit-gated) and
        // reports the phase once everything is actually on the wire.
        self.check_drained(ctx);
    }

    /// Once draining and everything has actually been transmitted, report
    /// the phase done (the chunk counts are final at that point).
    fn check_drained(&mut self, ctx: &mut dyn Context<Msg>) {
        if !self.draining || self.phase_done_sent {
            return;
        }
        // Re-routing blocked chunks can land tuples back in accumulation
        // buffers after the final flush; push them out again.
        let mut pending: Vec<(Vec<ActorId>, Vec<Tuple>)> = self
            .buffers
            .iter_mut()
            .filter(|(_, b)| !b.is_empty())
            .map(|(d, b)| (d.clone(), std::mem::take(b)))
            .collect();
        pending.sort_by(|(a, _), (b, _)| a.cmp(b));
        for (dests, tuples) in pending {
            self.ship_all(ctx, &dests, tuples.into());
        }
        if self.blocked_total() > 0 {
            return;
        }
        self.phase_done_sent = true;
        ctx.send(
            self.scheduler,
            Msg::SourcePhaseDone {
                phase: self.phase,
                sent_chunks: self.sent_chunks,
                sent_tuples: self.sent_tuples,
                comm: Box::new(std::mem::replace(
                    &mut self.comm,
                    CommCounters::new(self.cfg.chunk_tuples as u64),
                )),
            },
        );
    }
}

impl Actor<Msg> for DataSource {
    fn on_message(&mut self, ctx: &mut dyn Context<Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::StartBuild { routing, version } => {
                self.start_phase(ctx, Phase::Build, routing, version);
            }
            Msg::StartProbe { routing, version } => {
                self.start_phase(ctx, Phase::Probe, routing, version);
            }
            Msg::RoutingUpdate { routing, version } if version > self.routing_version => {
                self.routing = Some(routing);
                self.routing_version = version;
                self.reroute_blocked(ctx);
                self.check_drained(ctx);
            }
            Msg::DataAck => self.handle_ack(ctx, from),
            Msg::GenStep => self.gen_step(ctx),
            // Sources ignore everything else.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use crate::testutil::ScriptCtx;
    use ehj_hash::{RangeMap, ReplicaMap};

    const SCHED: ActorId = 0;
    const ME: ActorId = 1;
    const NODE_A: ActorId = 2;
    const NODE_B: ActorId = 3;

    fn cfg(r_tuples: u64, chunk: usize) -> Arc<JoinConfig> {
        let mut cfg = JoinConfig::paper_scaled(Algorithm::Replicated, 1000);
        cfg.sources = 1;
        cfg.r.tuples = r_tuples;
        cfg.s.tuples = r_tuples;
        cfg.chunk_tuples = chunk;
        // position == attribute for easy reasoning
        cfg.positions = 1000;
        cfg.r = cfg.r.with_domain(1000);
        cfg.s = cfg.s.with_domain(1000);
        Arc::new(cfg)
    }

    fn two_node_routing() -> RoutingTable {
        RoutingTable::Disjoint(RangeMap::partitioned(1000, &[NODE_A, NODE_B]))
    }

    /// Drives GenStep self-messages until the source stops scheduling them.
    fn run_gen(src: &mut DataSource, ctx: &mut ScriptCtx) {
        loop {
            let gen_steps = ctx.count(|m| matches!(m, Msg::GenStep));
            if gen_steps == 0 {
                break;
            }
            ctx.sent.retain(|(_, m)| !matches!(m, Msg::GenStep));
            for _ in 0..gen_steps {
                src.on_message(ctx, ME, Msg::GenStep);
            }
        }
    }

    fn data_tuples_to(ctx: &ScriptCtx, to: ActorId) -> u64 {
        ctx.sent
            .iter()
            .filter_map(|(t, m)| match m {
                Msg::Data { tuples, .. } if *t == to => Some(tuples.len() as u64),
                _ => None,
            })
            .sum()
    }

    #[test]
    fn build_phase_generates_routes_and_reports() {
        let mut src = DataSource::new(cfg(500, 50), 0, SCHED);
        let mut ctx = ScriptCtx::new(ME);
        src.on_message(
            &mut ctx,
            SCHED,
            Msg::StartBuild {
                routing: two_node_routing(),
                version: 1,
            },
        );
        run_gen(&mut src, &mut ctx);
        // Ack-drain the credit windows until the source reports done.
        let mut guard = 0;
        while ctx.count(|m| matches!(m, Msg::SourcePhaseDone { .. })) == 0 {
            src.on_message(&mut ctx, NODE_A, Msg::DataAck);
            src.on_message(&mut ctx, NODE_B, Msg::DataAck);
            run_gen(&mut src, &mut ctx);
            guard += 1;
            assert!(guard < 10_000, "drain must terminate");
        }
        // Every generated tuple reached exactly one node.
        let total = data_tuples_to(&ctx, NODE_A) + data_tuples_to(&ctx, NODE_B);
        assert_eq!(total, 500);
        // And the scheduler learned the final chunk count.
        let done = ctx
            .sent
            .iter()
            .find_map(|(_, m)| match m {
                Msg::SourcePhaseDone {
                    phase: Phase::Build,
                    sent_chunks,
                    sent_tuples,
                    ..
                } => Some((*sent_chunks, *sent_tuples)),
                _ => None,
            })
            .expect("phase-done report");
        assert_eq!(done.1, 500);
        let actual_chunks = ctx.count(|m| matches!(m, Msg::Data { .. }));
        assert_eq!(done.0, actual_chunks as u64);
    }

    #[test]
    fn credits_bound_inflight_chunks_per_destination() {
        // 2000 tuples to one node in 50-tuple chunks = 40 chunks, but only
        // CREDIT_CHUNKS may be on the wire before the first ack.
        let mut src = DataSource::new(cfg(2000, 50), 0, SCHED);
        let mut ctx = ScriptCtx::new(ME);
        src.on_message(
            &mut ctx,
            SCHED,
            Msg::StartBuild {
                routing: RoutingTable::Disjoint(RangeMap::partitioned(1000, &[NODE_A])),
                version: 1,
            },
        );
        run_gen(&mut src, &mut ctx);
        let sent = ctx.count(|m| matches!(m, Msg::Data { .. }));
        assert_eq!(sent, CREDIT_CHUNKS, "window limits the burst");
        assert!(src.blocked_total() > 0, "the rest waits for credits");
        // Each ack releases exactly one more chunk.
        ctx.sent.clear();
        src.on_message(&mut ctx, NODE_A, Msg::DataAck);
        assert_eq!(ctx.count(|m| matches!(m, Msg::Data { .. })), 1);
    }

    #[test]
    fn drain_completes_only_after_all_chunks_ship() {
        let mut src = DataSource::new(cfg(2000, 50), 0, SCHED);
        let mut ctx = ScriptCtx::new(ME);
        src.on_message(
            &mut ctx,
            SCHED,
            Msg::StartBuild {
                routing: RoutingTable::Disjoint(RangeMap::partitioned(1000, &[NODE_A])),
                version: 1,
            },
        );
        run_gen(&mut src, &mut ctx);
        assert_eq!(
            ctx.count(|m| matches!(m, Msg::SourcePhaseDone { .. })),
            0,
            "cannot report done while chunks are parked"
        );
        // Ack everything through; GenStep resumes when unblocked.
        let mut guard = 0;
        while src.blocked_total() > 0 || ctx.count(|m| matches!(m, Msg::GenStep)) > 0 {
            run_gen(&mut src, &mut ctx);
            src.on_message(&mut ctx, NODE_A, Msg::DataAck);
            guard += 1;
            assert!(guard < 10_000, "drain must terminate");
        }
        let total = data_tuples_to(&ctx, NODE_A);
        assert_eq!(total, 2000);
        assert_eq!(ctx.count(|m| matches!(m, Msg::SourcePhaseDone { .. })), 1);
    }

    #[test]
    fn probe_phase_broadcasts_to_replicas_and_counts_extra() {
        let mut src = DataSource::new(cfg(300, 100), 0, SCHED);
        let mut ctx = ScriptCtx::new(ME);
        let mut m = ReplicaMap::partitioned(1000, &[NODE_A]);
        let _ = m.replicate(NODE_A, NODE_B);
        src.on_message(
            &mut ctx,
            SCHED,
            Msg::StartProbe {
                routing: RoutingTable::Replica(m),
                version: 5,
            },
        );
        run_gen(&mut src, &mut ctx);
        // Every probe tuple goes to both replicas.
        assert_eq!(data_tuples_to(&ctx, NODE_A), 300);
        assert_eq!(data_tuples_to(&ctx, NODE_B), 300);
        let done_comm = ctx
            .sent
            .iter()
            .find_map(|(_, m)| match m {
                Msg::SourcePhaseDone { comm, .. } => Some((**comm).clone()),
                _ => None,
            })
            .expect("done report");
        assert_eq!(
            done_comm
                .cell(Phase::Probe, CommCategory::ProbeBroadcastExtra)
                .tuples,
            300,
            "the second copy of each tuple is extra communication"
        );
    }

    #[test]
    fn routing_update_reroutes_parked_chunks() {
        // Fill NODE_A's credit window, then move the whole range to NODE_B:
        // parked chunks must follow the new routing.
        let mut src = DataSource::new(cfg(2000, 50), 0, SCHED);
        let mut ctx = ScriptCtx::new(ME);
        src.on_message(
            &mut ctx,
            SCHED,
            Msg::StartBuild {
                routing: RoutingTable::Disjoint(RangeMap::partitioned(1000, &[NODE_A])),
                version: 1,
            },
        );
        run_gen(&mut src, &mut ctx);
        assert!(src.blocked_total() > 0);
        src.on_message(
            &mut ctx,
            SCHED,
            Msg::RoutingUpdate {
                routing: RoutingTable::Disjoint(RangeMap::partitioned(1000, &[NODE_B])),
                version: 2,
            },
        );
        run_gen(&mut src, &mut ctx);
        // Drain: acks from both nodes release the remaining windows.
        let mut guard = 0;
        while ctx.count(|m| matches!(m, Msg::SourcePhaseDone { .. })) == 0 {
            src.on_message(&mut ctx, NODE_A, Msg::DataAck);
            src.on_message(&mut ctx, NODE_B, Msg::DataAck);
            run_gen(&mut src, &mut ctx);
            guard += 1;
            assert!(guard < 10_000, "must terminate");
        }
        let a = data_tuples_to(&ctx, NODE_A);
        let b = data_tuples_to(&ctx, NODE_B);
        assert_eq!(a + b, 2000, "no tuple may be lost in the re-route");
        assert!(b > 0, "re-routed tuples went to the new owner");
    }

    #[test]
    fn stale_routing_updates_are_ignored() {
        let mut src = DataSource::new(cfg(100, 50), 0, SCHED);
        let mut ctx = ScriptCtx::new(ME);
        src.on_message(
            &mut ctx,
            SCHED,
            Msg::StartBuild {
                routing: two_node_routing(),
                version: 5,
            },
        );
        src.on_message(
            &mut ctx,
            SCHED,
            Msg::RoutingUpdate {
                routing: RoutingTable::Disjoint(RangeMap::partitioned(1000, &[NODE_B])),
                version: 3, // older than the active version
            },
        );
        assert_eq!(src.routing_version, 5);
        run_gen(&mut src, &mut ctx);
        assert!(data_tuples_to(&ctx, NODE_A) > 0, "v5 routing still applies");
    }

    #[test]
    fn hot_key_sources_sketch_and_round_robin_builds() {
        let mut c = (*cfg(2000, 50)).clone();
        c.hot_keys = crate::config::HotKeyConfig::enabled();
        c.hot_keys.min_total = 512;
        let mut src = DataSource::new(Arc::new(c), 0, SCHED);
        let mut ctx = ScriptCtx::new(ME);
        // Cold positions all belong to NODE_A; the hot tenth round-robins
        // over {A, B}.
        let routing = RoutingTable::HotKeys {
            overlay: crate::routing::HotKeyOverlay {
                hot: (0..100).collect(),
                replicas: vec![NODE_A, NODE_B],
                extra: vec![],
            },
            inner: Box::new(RoutingTable::Disjoint(RangeMap::partitioned(
                1000,
                &[NODE_A],
            ))),
        };
        src.on_message(
            &mut ctx,
            SCHED,
            Msg::StartBuild {
                routing,
                version: 1,
            },
        );
        run_gen(&mut src, &mut ctx);
        let mut guard = 0;
        while ctx.count(|m| matches!(m, Msg::SourcePhaseDone { .. })) == 0 {
            src.on_message(&mut ctx, NODE_A, Msg::DataAck);
            src.on_message(&mut ctx, NODE_B, Msg::DataAck);
            run_gen(&mut src, &mut ctx);
            guard += 1;
            assert!(guard < 10_000, "drain must terminate");
        }
        assert_eq!(
            data_tuples_to(&ctx, NODE_A) + data_tuples_to(&ctx, NODE_B),
            2000,
            "hot routing must not duplicate or drop build tuples"
        );
        assert!(
            data_tuples_to(&ctx, NODE_B) > 0,
            "round-robin must spread hot tuples to the second replica"
        );
        let sketches = ctx
            .sent
            .iter()
            .filter_map(|(to, m)| match m {
                Msg::SketchUpdate { sketch } if *to == SCHED => Some(sketch.clone()),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert!(!sketches.is_empty(), "threshold crossed: sketch must ship");
        let last = sketches.last().unwrap();
        assert_eq!(last.total(), 2000, "snapshots are cumulative");
    }

    #[test]
    fn sketches_stay_off_by_default() {
        let mut src = DataSource::new(cfg(1000, 50), 0, SCHED);
        let mut ctx = ScriptCtx::new(ME);
        src.on_message(
            &mut ctx,
            SCHED,
            Msg::StartBuild {
                routing: two_node_routing(),
                version: 1,
            },
        );
        run_gen(&mut src, &mut ctx);
        assert_eq!(ctx.count(|m| matches!(m, Msg::SketchUpdate { .. })), 0);
    }

    #[test]
    fn empty_relation_reports_immediately() {
        let mut src = DataSource::new(cfg(0, 50), 0, SCHED);
        let mut ctx = ScriptCtx::new(ME);
        src.on_message(
            &mut ctx,
            SCHED,
            Msg::StartBuild {
                routing: two_node_routing(),
                version: 1,
            },
        );
        run_gen(&mut src, &mut ctx);
        let done = ctx
            .sent
            .iter()
            .find_map(|(_, m)| match m {
                Msg::SourcePhaseDone {
                    sent_chunks,
                    sent_tuples,
                    ..
                } => Some((*sent_chunks, *sent_tuples)),
                _ => None,
            })
            .expect("immediate done");
        assert_eq!(done, (0, 0));
    }
}
