//! The join-process actor.
//!
//! §4.1.3: a join process builds and maintains a portion of the hash table
//! and performs the join on it. This actor implements the node-side
//! behaviour of all four algorithms:
//!
//! * inserting build tuples with byte-accurate memory accounting and
//!   raising `memory full` exactly when an insert cannot be allocated;
//! * queueing unhoused tuples ("pending buffers") and, on each routing
//!   update, re-forwarding the ones whose range moved to a new node —
//!   the replication-based hand-off of §4.2.2;
//! * performing linear-pointer bucket splits (§4.2.1) and range-bisect
//!   splits (the ablation policy);
//! * answering reshuffle histogram queries and shipping reshuffle
//!   extractions (§4.2.3);
//! * probing with per-comparison CPU accounting; and
//! * spilling to local disk Grace-style — the whole job of the out-of-core
//!   baseline, and the fallback of any EHJA once the cluster has no
//!   potential nodes left.

use crate::config::{Algorithm, JoinConfig, ProbeKernel};
use crate::msg::{Histogram, Msg, NodeReport};
use crate::routing::RoutingTable;
use ehj_data::{Tuple, TupleBatch};
use ehj_hash::{HashRange, JoinHashTable, PositionSpace, ProbeScratch, SplitStep};
use ehj_metrics::registry::names;
use ehj_metrics::{
    CommCategory, CommCounters, Counter, Gauge, MetricsHandle, Phase, TraceKind, Tracer,
};
use ehj_sim::{Actor, ActorId, Context};
use ehj_storage::{GraceJoin, GraceResult, SpillBackend};
use std::collections::VecDeque;
use std::sync::Arc;

/// A join node's registry instruments, minted once when the metrics
/// handle is attached. Per-batch latency and batch-size histograms feed
/// the report's percentile tables; the occupancy gauge (updated by delta,
/// so shard sharing stays exact) and the chain-length histogram describe
/// the hash-table layout. All single-branch no-ops when disabled.
struct NodeMetrics {
    build_ns: ehj_metrics::Histogram,
    probe_ns: ehj_metrics::Histogram,
    batch_tuples: ehj_metrics::Histogram,
    chain_len: ehj_metrics::Histogram,
    occupancy: Gauge,
    /// Last table length folded into the gauge.
    occupancy_seen: i64,
    /// Probe tuples through the filtered batch kernels (tag-rejection rate
    /// numerator/denominator, sampled into Perfetto counter tracks).
    filter_probes: Counter,
    filter_rejections: Counter,
    /// Mean chains concurrently in flight per interleaved-walk round, one
    /// sample per probed batch (wide kernels only).
    interleave_depth: ehj_metrics::Histogram,
    /// Probe tuples answered from a replicated hot position (DESIGN §4i).
    hotkey_hits: Counter,
    /// Tuples per resumable probe slice (recorded only when slicing is
    /// configured).
    slice_tuples: ehj_metrics::Histogram,
}

impl NodeMetrics {
    fn new(handle: &MetricsHandle) -> Self {
        Self {
            build_ns: handle.histogram(names::NODE_BUILD_NS),
            probe_ns: handle.histogram(names::NODE_PROBE_NS),
            batch_tuples: handle.histogram(names::NODE_BATCH_TUPLES),
            chain_len: handle.histogram(names::TABLE_CHAIN_LEN),
            occupancy: handle.gauge(names::NODE_ARENA_TUPLES),
            occupancy_seen: 0,
            filter_probes: handle.counter(names::NODE_FILTER_PROBES),
            filter_rejections: handle.counter(names::NODE_FILTER_REJECTIONS),
            interleave_depth: handle.histogram(names::NODE_INTERLEAVE_DEPTH),
            hotkey_hits: handle.counter(names::NODE_HOTKEY_HITS),
            slice_tuples: handle.histogram(names::SCHED_SLICE_TUPLES),
        }
    }
}

/// A probe batch being processed in resumable slices: the cursor is the
/// continuation. Parked between slices when the scheduler asks the node to
/// yield; the executor resumes it before draining the mailbox again.
struct ParkedProbe {
    tuples: TupleBatch,
    cursor: usize,
}

/// One join process. `B` selects the spill backend: in-memory under the
/// discrete-event simulator (I/O cost charged through the engine's disk
/// model), real files under the threaded runtime.
pub struct JoinNode<B: SpillBackend + Default + Send> {
    cfg: Arc<JoinConfig>,
    scheduler: ActorId,
    me: ActorId,
    space: PositionSpace,
    capacity_bytes: u64,
    active: bool,
    boot_queue: Vec<(ActorId, Msg)>,
    table: JoinHashTable,
    pending: VecDeque<Tuple>,
    awaiting_relief: bool,
    /// Whether a MemoryFull report may still be queued at the scheduler.
    reported_full: bool,
    routing: Option<RoutingTable>,
    routing_version: u64,
    recv_chunks: [u64; 3],
    fwd_chunks: [u64; 3],
    comm: CommCounters,
    matches: u64,
    compares: u64,
    spill: Option<GraceJoin<B>>,
    spill_build_tuples: u64,
    grace_result: Option<GraceResult>,
    reported: bool,
    tracer: Tracer,
    metrics: NodeMetrics,
    /// Reusable per-destination scatter buffers for routing whole batches
    /// (the destination slots persist across messages; no per-tuple map
    /// lookups or per-call rebuilds).
    scatter: Vec<(ActorId, Vec<Tuple>)>,
    /// Reusable position buffer for the hash-once build path.
    pos_scratch: Vec<u32>,
    /// Reusable scratch (positions + survivor queue) for the probe kernels.
    probe_scratch: ProbeScratch,
    /// Probe-filter effectiveness counters, emitted as one
    /// `ProbeFilterStats` trace event with the node's final report.
    filter_probes: u64,
    filter_rejections: u64,
    filter_batches: u64,
    /// Hot-key copies received before this node's own `HotKeyPlan`:
    /// inserting them early would re-ship a peer's copies during our own
    /// extraction, so they wait until the plan has been processed.
    hotkey_stash: Vec<TupleBatch>,
    /// Whether this node's `HotKeyPlan` has been processed this run.
    hotkey_plan_seen: bool,
    /// An in-flight sliced probe batch, parked between slices when the
    /// scheduler preempts this node (see [`JoinConfig::probe_slice`]).
    parked_probe: Option<ParkedProbe>,
}

impl<B: SpillBackend + Default + Send> JoinNode<B> {
    /// Creates an (initially inactive) join process for the node with
    /// `capacity_bytes` of hash-table memory.
    #[must_use]
    pub fn new(cfg: Arc<JoinConfig>, scheduler: ActorId, me: ActorId, capacity_bytes: u64) -> Self {
        let space = PositionSpace::new(cfg.positions, cfg.r.domain, cfg.hasher);
        let table = JoinHashTable::new(space, cfg.schema(), capacity_bytes);
        let chunk = cfg.chunk_tuples as u64;
        Self {
            cfg,
            scheduler,
            me,
            space,
            capacity_bytes,
            active: false,
            boot_queue: Vec::new(),
            table,
            pending: VecDeque::new(),
            awaiting_relief: false,
            reported_full: false,
            routing: None,
            routing_version: 0,
            recv_chunks: [0; 3],
            fwd_chunks: [0; 3],
            comm: CommCounters::new(chunk),
            matches: 0,
            compares: 0,
            spill: None,
            spill_build_tuples: 0,
            grace_result: None,
            reported: false,
            tracer: Tracer::off(),
            metrics: NodeMetrics::new(&MetricsHandle::disabled()),
            scatter: Vec::new(),
            pos_scratch: Vec::new(),
            probe_scratch: ProbeScratch::new(),
            filter_probes: 0,
            filter_rejections: 0,
            filter_batches: 0,
            hotkey_stash: Vec::new(),
            hotkey_plan_seen: false,
            parked_probe: None,
        }
    }

    /// Attaches a tracer; events are emitted through it from then on.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches registry instruments (per-phase latency histograms, batch
    /// sizes, arena occupancy, chain lengths). Instrumentation never calls
    /// `consume_cpu` or changes message flow, so simulated observables are
    /// untouched.
    #[must_use]
    pub fn with_metrics(mut self, handle: &MetricsHandle) -> Self {
        self.metrics = NodeMetrics::new(handle);
        self
    }

    /// Folds the table-length change since the last call into the shared
    /// occupancy gauge (delta-based: exact even when shards are shared).
    fn update_occupancy(&mut self) {
        let now = self.table.len() as i64;
        let delta = now - self.metrics.occupancy_seen;
        if delta != 0 {
            self.metrics.occupancy.add(delta);
            self.metrics.occupancy_seen = now;
        }
    }

    /// Emits a summary-level trace event attributed to this node.
    fn trace(&self, ctx: &dyn Context<Msg>, phase: Phase, kind: TraceKind) {
        self.tracer.emit(ctx.now().as_nanos(), self.me, phase, kind);
    }

    /// Emits a detail-level trace event attributed to this node.
    fn trace_detail(&self, ctx: &dyn Context<Msg>, phase: Phase, kind: TraceKind) {
        self.tracer
            .emit_detail(ctx.now().as_nanos(), self.me, phase, kind);
    }

    /// Tuples currently resident in the in-memory table (post-run
    /// inspection).
    #[must_use]
    pub fn resident_tuples(&self) -> u64 {
        self.table.len()
    }

    fn tuple_bytes(&self) -> u64 {
        self.cfg.schema().tuple_bytes()
    }

    /// The category used when this node forwards build tuples it cannot or
    /// should not house (pending hand-off / stale routing).
    fn forward_category(&self) -> CommCategory {
        match self.cfg.algorithm {
            Algorithm::Replicated | Algorithm::Hybrid => CommCategory::ReplicaForward,
            Algorithm::Split => CommCategory::OwnershipForward,
            Algorithm::OutOfCore => CommCategory::OwnershipForward,
        }
    }

    /// Ships a batch to `to` in chunk-sized data messages, recording the
    /// traffic under `cat`. Chunks are zero-copy views of the batch.
    fn send_tuples(
        &mut self,
        ctx: &mut dyn Context<Msg>,
        to: ActorId,
        phase: Phase,
        cat: CommCategory,
        batch: TupleBatch,
    ) {
        if batch.is_empty() {
            return;
        }
        let tb = self.tuple_bytes();
        for chunk in batch.chunks(self.cfg.chunk_tuples) {
            let n = chunk.len() as u64;
            self.comm.record(phase, cat, n, n * tb);
            self.fwd_chunks[phase.index()] += 1;
            ctx.send(
                to,
                Msg::Data {
                    phase,
                    category: cat,
                    tuples: chunk,
                    tuple_bytes: tb,
                },
            );
        }
    }

    /// Stages one routed tuple for `dest` in the reusable scatter buffers.
    /// Destinations are few (active nodes a batch fans out to), so a linear
    /// slot scan beats any map.
    #[inline]
    fn scatter_push(&mut self, dest: ActorId, t: Tuple) {
        match self.scatter.iter_mut().find(|(d, _)| *d == dest) {
            Some((_, buf)) => buf.push(t),
            None => self.scatter.push((dest, vec![t])),
        }
    }

    /// Ships every staged scatter group (in destination order, for
    /// deterministic traffic) and charges the routing CPU. When `whole` is
    /// the original incoming batch and every tuple routed to one
    /// destination, that batch is re-forwarded as an `Arc` clone instead of
    /// re-materializing the tuples — the common stale-routing case where a
    /// chunk's entire range moved to one new owner.
    fn ship_scatter(
        &mut self,
        ctx: &mut dyn Context<Msg>,
        phase: Phase,
        whole: Option<&TupleBatch>,
    ) {
        let costs = self.cfg.costs;
        let fwd_cat = self.forward_category();
        let mut order: Vec<usize> = (0..self.scatter.len())
            .filter(|&i| !self.scatter[i].1.is_empty())
            .collect();
        order.sort_by_key(|&i| self.scatter[i].0);
        for i in order {
            let dest = self.scatter[i].0;
            let n = self.scatter[i].1.len();
            ctx.consume_cpu(costs.route_per_tuple * n as u64);
            let batch = match whole {
                Some(b) if b.len() == n => {
                    self.scatter[i].1.clear();
                    b.clone()
                }
                _ => TupleBatch::from(std::mem::take(&mut self.scatter[i].1)),
            };
            self.send_tuples(ctx, dest, phase, fwd_cat, batch);
        }
    }

    fn activate(&mut self, ctx: &mut dyn Context<Msg>, routing: RoutingTable, version: u64) {
        if self.active {
            // Re-activation of a warm spare: just refresh routing.
            if version > self.routing_version {
                self.routing = Some(routing);
                self.routing_version = version;
            }
            return;
        }
        self.active = true;
        ctx.consume_cpu(self.cfg.costs.recruit_latency);
        self.routing = Some(routing);
        self.routing_version = version;
        let queued = std::mem::take(&mut self.boot_queue);
        for (from, msg) in queued {
            self.dispatch(ctx, from, msg);
        }
    }

    /// Begins spilling: drains the in-memory table into Grace fragments.
    fn activate_spill(&mut self, ctx: &mut dyn Context<Msg>) {
        if self.spill.is_some() {
            return;
        }
        let range = HashRange::new(0, self.cfg.positions);
        let mut grace = GraceJoin::new(
            self.space,
            self.cfg.schema(),
            range,
            self.capacity_bytes,
            self.cfg.grace,
            B::default(),
        );
        let drained = self.table.drain_all();
        let n = drained.len() as u64;
        ctx.consume_cpu(self.cfg.costs.route_per_tuple * n);
        let bytes = grace.append_build(&drained);
        ctx.disk_write(bytes); // first spill positions the fragment files
        self.trace(
            ctx,
            Phase::Build,
            TraceKind::Spill {
                bytes,
                fragments: grace.fragments() as u64,
            },
        );
        self.spill = Some(grace);
        self.spill_pending(ctx);
        ctx.send(self.scheduler, Msg::Spilled);
    }

    /// Pending tuples finally have a home on disk: append them and retract
    /// any outstanding overflow report. Shared by spill activation and the
    /// post-spill pending drain.
    fn spill_pending(&mut self, ctx: &mut dyn Context<Msg>) {
        let pending: Vec<Tuple> = std::mem::take(&mut self.pending).into();
        self.spill_append_build(ctx, &pending);
        self.awaiting_relief = false;
        self.retract_full_report(ctx);
    }

    /// Raises the §4.1.3 "memory full" condition for the current pending
    /// queue (at most one report outstanding; see `reported_full`).
    fn report_overflow(&mut self, ctx: &mut dyn Context<Msg>) {
        self.awaiting_relief = true;
        self.reported_full = true;
        let pending = self.pending.len() as u64;
        self.trace(ctx, Phase::Build, TraceKind::BucketOverflow { pending });
        ctx.send(self.scheduler, Msg::MemoryFull { pending });
    }

    fn spill_append_build(&mut self, ctx: &mut dyn Context<Msg>, tuples: &[Tuple]) {
        if tuples.is_empty() {
            return;
        }
        let grace = self.spill.as_mut().expect("spill active");
        ctx.consume_cpu(self.cfg.costs.route_per_tuple * tuples.len() as u64);
        let bytes = grace.append_build(tuples);
        let fragments = grace.fragments() as u64;
        ctx.disk_append(bytes);
        self.trace_detail(ctx, Phase::Build, TraceKind::Spill { bytes, fragments });
    }

    fn handle_build(&mut self, ctx: &mut dyn Context<Msg>, batch: TupleBatch) {
        let _timer = self.metrics.build_ns.start_timer();
        self.metrics.batch_tuples.record(batch.len() as u64);
        let costs = self.cfg.costs;
        let routing = self.routing.take().expect("active node has routing");
        let mut to_spill: Vec<Tuple> = Vec::new();
        let mut inserted: u64 = 0;
        let mut newly_pending: u64 = 0;
        // Hash once, in bulk: each position addresses both the routing
        // table and the local hash table.
        let mut positions = std::mem::take(&mut self.pos_scratch);
        self.space.bulk_positions(&batch, &mut positions);
        for (&t, &pos) in batch.iter().zip(&positions) {
            // Hot positions are replicated: a hot tuple landing anywhere is
            // validly homed, and the post-build hand-off copies it to every
            // clean participant (DESIGN §4i). Forwarding it would break the
            // exactly-once-per-replica-set invariant the sources establish.
            let hot = routing.overlay().is_some_and(|o| o.is_hot(pos));
            let dest = if hot {
                self.me
            } else {
                routing.build_dest_pos(pos)
            };
            if dest != self.me {
                self.scatter_push(dest, t);
                continue;
            }
            if self.spill.is_some() {
                to_spill.push(t);
                continue;
            }
            match self.table.insert_pre_hashed(t, pos) {
                Ok(()) => inserted += 1,
                Err(_) => {
                    if self.cfg.algorithm == Algorithm::OutOfCore {
                        // The baseline never expands: go out of core now.
                        self.activate_spill(ctx);
                        to_spill.push(t);
                    } else {
                        self.pending.push_back(t);
                        newly_pending += 1;
                    }
                }
            }
        }
        self.routing = Some(routing);
        self.pos_scratch = positions;
        ctx.consume_cpu(costs.insert_per_tuple * inserted);
        let kept_local = inserted + to_spill.len() as u64 + newly_pending;
        self.spill_append_build(ctx, &to_spill);
        // If nothing stayed local, the original batch may be re-forwardable
        // wholesale (Arc clone) instead of copied out of the scatter buffer.
        let whole = (kept_local == 0).then_some(&batch);
        self.ship_scatter(ctx, Phase::Build, whole);
        if newly_pending > 0 && !self.awaiting_relief {
            self.report_overflow(ctx);
        }
    }

    /// Notifies the scheduler that this node no longer needs relief, so a
    /// stale queued overflow report does not trigger a pointless split.
    fn retract_full_report(&mut self, ctx: &mut dyn Context<Msg>) {
        if self.reported_full {
            self.reported_full = false;
            ctx.send(self.scheduler, Msg::Relieved);
        }
    }

    /// Re-examines pending tuples after a routing change: forward the ones
    /// that now belong elsewhere, retry the rest, and escalate again if the
    /// table is still full.
    fn drain_pending(&mut self, ctx: &mut dyn Context<Msg>) {
        if self.pending.is_empty() {
            self.awaiting_relief = false;
            self.retract_full_report(ctx);
            return;
        }
        if self.spill.is_some() {
            self.spill_pending(ctx);
            return;
        }
        let costs = self.cfg.costs;
        let routing = self.routing.take().expect("active node has routing");
        let mut still = VecDeque::new();
        let mut inserted: u64 = 0;
        for t in std::mem::take(&mut self.pending) {
            let pos = self.space.position_of(t.join_attr);
            let hot = routing.overlay().is_some_and(|o| o.is_hot(pos));
            if hot {
                // A replicated position is validly homed on any member, so
                // prefer housing it here; but when the table is full the
                // tuple must follow the *inner* routing like any other
                // pending tuple — relief moves inner ownership, never the
                // overlay, and pinning it here would deadlock the drain.
                // The receiver houses it where it arrives: still exactly
                // once.
                if self.table.insert_pre_hashed(t, pos).is_ok() {
                    inserted += 1;
                    continue;
                }
            }
            let dest = if hot {
                routing.inner().build_dest_pos(pos)
            } else {
                routing.build_dest_pos(pos)
            };
            if dest != self.me {
                self.scatter_push(dest, t);
            } else {
                match self.table.insert_pre_hashed(t, pos) {
                    Ok(()) => inserted += 1,
                    Err(_) => still.push_back(t),
                }
            }
        }
        self.routing = Some(routing);
        self.pending = still;
        ctx.consume_cpu(costs.insert_per_tuple * inserted);
        self.ship_scatter(ctx, Phase::Build, None);
        if self.pending.is_empty() {
            self.awaiting_relief = false;
            self.retract_full_report(ctx);
        } else {
            // Still full after relief: report again (one split per report,
            // the uncontrolled-split discipline of linear hashing).
            self.report_overflow(ctx);
        }
    }

    fn handle_probe(&mut self, ctx: &mut dyn Context<Msg>, tuples: TupleBatch) {
        self.metrics.batch_tuples.record(tuples.len() as u64);
        let costs = self.cfg.costs;
        if let Some(grace) = self.spill.as_mut() {
            let _timer = self.metrics.probe_ns.start_timer();
            ctx.consume_cpu(costs.route_per_tuple * tuples.len() as u64);
            let bytes = grace.append_probe(&tuples);
            let fragments = grace.fragments() as u64;
            ctx.disk_append(bytes);
            self.trace_detail(ctx, Phase::Probe, TraceKind::Spill { bytes, fragments });
            return;
        }
        // The executor resumes parked work before delivering the next
        // message, so a new batch can never land on top of a parked one.
        debug_assert!(self.parked_probe.is_none(), "probe batch while parked");
        self.parked_probe = Some(ParkedProbe { tuples, cursor: 0 });
        self.run_parked_probe(ctx);
    }

    /// Processes the parked probe batch in `probe_slice`-sized resumable
    /// slices (the whole batch at once when slicing is off), parking the
    /// cursor again if the scheduler asks this node to yield between
    /// slices. Every per-slice cost and counter is additive in the tuple
    /// ranges, so any slicing produces byte-identical simulated
    /// observables — proved by the sliced-vs-whole differential tests.
    fn run_parked_probe(&mut self, ctx: &mut dyn Context<Msg>) {
        let _timer = self.metrics.probe_ns.start_timer();
        while let Some(parked) = self.parked_probe.take() {
            let remaining = parked.tuples.len() - parked.cursor;
            let step = match self.cfg.probe_slice {
                0 => remaining,
                s => s.min(remaining),
            };
            let slice = parked.tuples.slice(parked.cursor, step);
            self.probe_slice(ctx, &slice);
            if self.cfg.probe_slice > 0 {
                self.metrics.slice_tuples.record(step as u64);
            }
            if parked.cursor + step < parked.tuples.len() {
                self.parked_probe = Some(ParkedProbe {
                    cursor: parked.cursor + step,
                    ..parked
                });
                if ctx.should_yield() {
                    return;
                }
            }
        }
    }

    /// Probes one slice of a batch and accounts for exactly that slice.
    fn probe_slice(&mut self, ctx: &mut dyn Context<Msg>, tuples: &TupleBatch) {
        let costs = self.cfg.costs;
        let (compared, found) = if self.cfg.probe_kernel == ProbeKernel::Scalar {
            // Scalar oracle: tuple-at-a-time, kept for differential tests.
            // Deliberately outside the kernel dispatch so it records no
            // filter stats (the oracle has no filter).
            let mut compared: u64 = 0;
            let mut found: u64 = 0;
            for t in tuples {
                let r = self.table.probe(t.join_attr);
                compared += r.compared;
                found += r.matches;
            }
            (compared, found)
        } else {
            let mut scratch = std::mem::take(&mut self.probe_scratch);
            let stats = self
                .table
                .probe_batch_with(tuples, &mut scratch, self.cfg.probe_kernel);
            self.probe_scratch = scratch;
            self.filter_probes += stats.probes;
            self.filter_rejections += stats.rejections;
            self.filter_batches += 1;
            self.metrics.filter_probes.add(stats.probes);
            self.metrics.filter_rejections.add(stats.rejections);
            // Mean interleave depth; `None` (no walker rounds, i.e. the
            // batched kernel or an all-rejected batch) records nothing.
            if let Some(depth) = stats.walk_active.checked_div(stats.walk_rounds) {
                self.metrics.interleave_depth.record(depth);
            }
            (stats.compared, stats.matches)
        };
        self.matches += found;
        self.compares += compared;
        if let Some(o) = self.routing.as_ref().and_then(RoutingTable::overlay) {
            let hits = tuples
                .iter()
                .filter(|t| o.is_hot(self.space.position_of(t.join_attr)))
                .count() as u64;
            if hits > 0 {
                self.metrics.hotkey_hits.add(hits);
            }
        }
        ctx.consume_cpu(
            costs.probe_per_tuple * tuples.len() as u64
                + costs.probe_per_compare * compared
                + costs.per_match * found,
        );
    }

    /// Hot-key hand-off (DESIGN §4i): copy — without removing — this
    /// node's tuples at the hot positions to every other clean participant,
    /// so each replica ends up with the full build side of the hot keys.
    /// Stashed copies from peers whose plan raced ahead of ours are
    /// inserted only after our own extraction, otherwise we would re-ship
    /// a peer's copies and double-count matches.
    fn handle_hotkey_plan(
        &mut self,
        ctx: &mut dyn Context<Msg>,
        positions: Vec<u32>,
        members: Vec<ActorId>,
    ) {
        self.hotkey_plan_seen = true;
        let mut sent: u64 = 0;
        if self.spill.is_none() && !positions.is_empty() {
            let scanned = self.table.len();
            let copies = self.table.collect_positions(&positions);
            ctx.consume_cpu(self.cfg.costs.route_per_tuple * scanned);
            if !copies.is_empty() {
                let batch = TupleBatch::from(copies);
                let me = self.me;
                for &m in members.iter().filter(|&&m| m != me) {
                    self.trace_detail(
                        ctx,
                        Phase::Reshuffle,
                        TraceKind::ReshuffleChunk {
                            to: m,
                            tuples: batch.len() as u64,
                        },
                    );
                    sent += batch.len() as u64;
                    self.send_hotkey_data(ctx, m, batch.clone());
                }
            }
        }
        ctx.send(self.scheduler, Msg::HotKeyDone { sent_tuples: sent });
        let stash = std::mem::take(&mut self.hotkey_stash);
        for batch in stash {
            self.insert_hotkey_batch(ctx, &batch);
        }
    }

    /// Ships a hand-off batch in chunk-sized `HotKeyData` messages. The
    /// traffic rides the reshuffle lane: it happens in the same barrier
    /// window and competes with reshuffle transfers for the same links.
    fn send_hotkey_data(&mut self, ctx: &mut dyn Context<Msg>, to: ActorId, batch: TupleBatch) {
        let tb = self.tuple_bytes();
        for chunk in batch.chunks(self.cfg.chunk_tuples) {
            let n = chunk.len() as u64;
            self.comm
                .record(Phase::Reshuffle, CommCategory::ReshuffleTransfer, n, n * tb);
            self.fwd_chunks[Phase::Reshuffle.index()] += 1;
            ctx.send(
                to,
                Msg::HotKeyData {
                    tuples: chunk,
                    tuple_bytes: tb,
                },
            );
        }
    }

    fn insert_hotkey_batch(&mut self, ctx: &mut dyn Context<Msg>, tuples: &TupleBatch) {
        ctx.consume_cpu(self.cfg.costs.insert_per_tuple * tuples.len() as u64);
        if self.spill.is_some() {
            // Spilled members are excluded from the hand-off, but a racing
            // spill still needs the copies to land somewhere durable.
            self.spill_append_build(ctx, tuples);
        } else {
            self.table.insert_batch_unchecked(tuples);
        }
    }

    fn handle_reshuffle_data(&mut self, ctx: &mut dyn Context<Msg>, tuples: TupleBatch) {
        // Reshuffle receivers insert without a capacity check: the greedy
        // plan equalizes loads, and the paper redistributes unconditionally.
        ctx.consume_cpu(self.cfg.costs.insert_per_tuple * tuples.len() as u64);
        self.table.insert_batch_unchecked(&tuples);
    }

    fn handle_split_request(
        &mut self,
        ctx: &mut dyn Context<Msg>,
        step: SplitStep,
        new_node: ActorId,
    ) {
        // Scan the bucket (this node's whole table under linear hashing:
        // every node owns exactly one bucket) and extract the upper half of
        // its subrange. Linear hashing subdivides the position space,
        // matching the routing table.
        let scanned = self.table.len();
        let moved = self
            .table
            .drain_positions(|pos| step.moves_to_new(pos as u64));
        ctx.consume_cpu(self.cfg.costs.route_per_tuple * scanned);
        let moved_count = moved.len() as u64;
        self.send_tuples(
            ctx,
            new_node,
            Phase::Build,
            CommCategory::SplitTransfer,
            moved.into(),
        );
        ctx.send(
            self.scheduler,
            Msg::SplitDone {
                step,
                moved_tuples: moved_count,
            },
        );
    }

    fn handle_range_split(
        &mut self,
        ctx: &mut dyn Context<Msg>,
        new_node: ActorId,
        range: HashRange,
    ) {
        // Cut at the load median of this node's histogram.
        let hist = self.table.position_histogram(range.start, range.end);
        let total: u64 = hist.iter().sum();
        ctx.consume_cpu(self.cfg.costs.probe_per_compare * total);
        let mut cut = range.start;
        if total > 0 {
            let mut prefix = 0u64;
            for (i, &c) in hist.iter().enumerate() {
                if prefix * 2 >= total {
                    cut = range.start + i as u32;
                    break;
                }
                prefix += c;
                cut = range.start + i as u32 + 1;
            }
        }
        let usable = cut > range.start && cut < range.end;
        if !usable {
            ctx.send(
                self.scheduler,
                Msg::RangeSplitDone {
                    cut: range.start,
                    moved_tuples: 0,
                    ok: false,
                },
            );
            return;
        }
        let moved = self.table.extract_range(cut, range.end);
        let moved_count = moved.len() as u64;
        ctx.consume_cpu(self.cfg.costs.route_per_tuple * moved_count);
        self.send_tuples(
            ctx,
            new_node,
            Phase::Build,
            CommCategory::SplitTransfer,
            moved.into(),
        );
        // Apply the cut to this node's own routing immediately: tuples for
        // the upper half that arrive before the scheduler's broadcast must
        // be forwarded, not silently re-inserted into a table the probe
        // phase will no longer consult for that subrange.
        if let Some(RoutingTable::Disjoint(m)) = self.routing.as_mut().map(RoutingTable::inner_mut)
        {
            m.replace_range(
                range,
                vec![
                    (HashRange::new(range.start, cut), self.me),
                    (HashRange::new(cut, range.end), new_node),
                ],
            );
        }
        ctx.send(
            self.scheduler,
            Msg::RangeSplitDone {
                cut,
                moved_tuples: moved_count,
                ok: true,
            },
        );
    }

    fn handle_reshuffle_plan(
        &mut self,
        ctx: &mut dyn Context<Msg>,
        group: u32,
        assignments: Vec<(HashRange, ActorId)>,
    ) {
        let mut sent: u64 = 0;
        for (subrange, owner) in assignments {
            if owner == self.me || subrange.is_empty() {
                continue;
            }
            let extracted = self.table.extract_range(subrange.start, subrange.end);
            if extracted.is_empty() {
                continue;
            }
            sent += extracted.len() as u64;
            ctx.consume_cpu(self.cfg.costs.route_per_tuple * extracted.len() as u64);
            self.trace_detail(
                ctx,
                Phase::Reshuffle,
                TraceKind::ReshuffleChunk {
                    to: owner,
                    tuples: extracted.len() as u64,
                },
            );
            self.send_tuples(
                ctx,
                owner,
                Phase::Reshuffle,
                CommCategory::ReshuffleTransfer,
                extracted.into(),
            );
        }
        ctx.send(
            self.scheduler,
            Msg::ReshuffleDone {
                group,
                sent_tuples: sent,
            },
        );
    }

    fn handle_report_request(&mut self, ctx: &mut dyn Context<Msg>) {
        if self.reported {
            return;
        }
        self.reported = true;
        if let Some(grace) = self.spill.take() {
            self.spill_build_tuples = grace.build_tuples();
            let result = grace.finalize();
            ctx.disk_read(result.bytes_read);
            ctx.disk_write(result.bytes_rewritten);
            self.trace(
                ctx,
                Phase::Probe,
                TraceKind::SpillFetch {
                    bytes: result.bytes_read,
                },
            );
            let costs = self.cfg.costs;
            ctx.consume_cpu(
                costs.insert_per_tuple * result.build_inserts
                    + costs.probe_per_compare * result.compares
                    + costs.per_match * result.matches,
            );
            self.matches += result.matches;
            self.compares += result.compares;
            self.grace_result = Some(result);
        }
        if self.filter_probes > 0 {
            self.trace(
                ctx,
                Phase::Probe,
                TraceKind::ProbeFilterStats {
                    probes: self.filter_probes,
                    rejections: self.filter_rejections,
                    batches: self.filter_batches,
                },
            );
        }
        self.table.observe_metrics(&self.metrics.chain_len);
        let build_tuples = self.table.len() + self.spill_build_tuples;
        ctx.send(
            self.scheduler,
            Msg::Report(Box::new(NodeReport {
                build_tuples,
                matches: self.matches,
                compares: self.compares,
                comm: self.comm.clone(),
                spilled: self.grace_result.is_some(),
                grace: self.grace_result,
            })),
        );
    }

    fn dispatch(&mut self, ctx: &mut dyn Context<Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Data { phase, tuples, .. } => {
                self.recv_chunks[phase.index()] += 1;
                ctx.consume_cpu(self.cfg.costs.chunk_handling);
                // Flow-control credit back to the sender (sources gate on
                // these; node-to-node senders ignore them).
                ctx.send(from, Msg::DataAck);
                match phase {
                    Phase::Build => self.handle_build(ctx, tuples),
                    Phase::Probe => self.handle_probe(ctx, tuples),
                    Phase::Reshuffle => self.handle_reshuffle_data(ctx, tuples),
                }
            }
            Msg::RoutingUpdate { routing, version } => {
                if version > self.routing_version {
                    self.routing = Some(routing);
                    self.routing_version = version;
                }
                self.drain_pending(ctx);
            }
            Msg::SplitRequest { step, new_node } => {
                self.handle_split_request(ctx, step, new_node);
            }
            Msg::RangeSplitRequest { new_node, range } => {
                self.handle_range_split(ctx, new_node, range);
            }
            Msg::ReshuffleQuery { group, range } => {
                let counts = self.table.position_histogram(range.start, range.end);
                let total: u64 = counts.iter().sum();
                ctx.consume_cpu(self.cfg.costs.probe_per_compare * total);
                ctx.send(
                    self.scheduler,
                    Msg::ReshuffleCounts {
                        group,
                        histogram: Histogram { counts },
                    },
                );
            }
            Msg::ReshufflePlan { group, assignments } => {
                self.handle_reshuffle_plan(ctx, group, assignments);
            }
            Msg::HotKeyPlan { positions, members } => {
                self.handle_hotkey_plan(ctx, positions, members);
            }
            Msg::HotKeyData { tuples, .. } => {
                self.recv_chunks[Phase::Reshuffle.index()] += 1;
                ctx.consume_cpu(self.cfg.costs.chunk_handling);
                ctx.send(from, Msg::DataAck);
                if self.hotkey_plan_seen {
                    self.insert_hotkey_batch(ctx, &tuples);
                } else {
                    self.hotkey_stash.push(tuples);
                }
            }
            Msg::NoMoreNodes => {
                if self.cfg.allow_spill_fallback {
                    self.activate_spill(ctx);
                } else {
                    panic!(
                        "join node {} cannot be relieved and spill fallback is disabled",
                        self.me
                    );
                }
            }
            Msg::FlushQuery { epoch, phase } => {
                ctx.send(
                    self.scheduler,
                    Msg::FlushAck {
                        epoch,
                        recv_chunks: self.recv_chunks[phase.index()],
                        fwd_chunks: self.fwd_chunks[phase.index()],
                        pending: self.pending.len() as u64,
                    },
                );
            }
            Msg::ReportRequest => self.handle_report_request(ctx),
            // Activation handled in on_message before dispatch.
            _ => {}
        }
        self.update_occupancy();
    }
}

impl<B: SpillBackend + Default + Send> Actor<Msg> for JoinNode<B> {
    fn on_message(&mut self, ctx: &mut dyn Context<Msg>, from: ActorId, msg: Msg) {
        if let Msg::Activate { routing, version } = msg {
            self.activate(ctx, routing, version);
            return;
        }
        if !self.active {
            // Data can outrun activation (the scheduler's Activate and a
            // source's first chunk race through independent links); queue
            // until the join process is up.
            self.boot_queue.push((from, msg));
            return;
        }
        self.dispatch(ctx, from, msg);
    }

    // Delay charging for queued boot messages: they were already paid for
    // when dispatched from `activate`.

    fn has_parked_work(&self) -> bool {
        self.parked_probe.is_some()
    }

    fn on_resume(&mut self, ctx: &mut dyn Context<Msg>) {
        self.run_parked_probe(ctx);
    }
}

#[cfg(test)]
mod tests {
    //! Unit tests drive the node through a scripted context; full-protocol
    //! coverage lives in the runner/integration tests.

    use super::*;
    use crate::config::JoinConfig;
    use crate::testutil::ScriptCtx;
    use ehj_hash::RangeMap;
    use ehj_storage::MemBackend;

    const SCHED: ActorId = 0;
    const ME: ActorId = 10;
    const OTHER: ActorId = 11;

    fn test_cfg(algorithm: Algorithm) -> Arc<JoinConfig> {
        let mut cfg = JoinConfig::paper_scaled(algorithm, 1000);
        // positions == domain: position == attribute value, which keeps the
        // expected routing in these tests easy to read.
        cfg.positions = 1000;
        cfg.r = cfg.r.with_domain(1000);
        cfg.s = cfg.s.with_domain(1000);
        cfg.chunk_tuples = 8;
        Arc::new(cfg)
    }

    fn capacity_tuples(cfg: &JoinConfig, n: u64) -> u64 {
        n * (cfg.schema().tuple_bytes() + ehj_hash::ENTRY_OVERHEAD_BYTES)
    }

    /// Routing: positions [0,500) → ME, [500,1000) → OTHER.
    fn two_node_routing() -> RoutingTable {
        RoutingTable::Disjoint(RangeMap::partitioned(1000, &[ME, OTHER]))
    }

    fn activated_node(algorithm: Algorithm, cap_tuples: u64) -> (JoinNode<MemBackend>, ScriptCtx) {
        let cfg = test_cfg(algorithm);
        let cap = capacity_tuples(&cfg, cap_tuples);
        let mut node = JoinNode::<MemBackend>::new(cfg, SCHED, ME, cap);
        let mut ctx = ScriptCtx::new(ME);
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::Activate {
                routing: two_node_routing(),
                version: 1,
            },
        );
        ctx.sent.clear();
        (node, ctx)
    }

    fn build_data(tuples: Vec<Tuple>) -> Msg {
        Msg::Data {
            phase: Phase::Build,
            category: CommCategory::SourceDelivery,
            tuples: tuples.into(),
            tuple_bytes: 116,
        }
    }

    #[test]
    fn metrics_instruments_observe_build_probe_and_occupancy() {
        use ehj_metrics::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let cfg = test_cfg(Algorithm::Replicated);
        let cap = capacity_tuples(&cfg, 100);
        let mut node =
            JoinNode::<MemBackend>::new(cfg, SCHED, ME, cap).with_metrics(&registry.handle_for(0));
        let mut ctx = ScriptCtx::new(ME);
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::Activate {
                routing: two_node_routing(),
                version: 1,
            },
        );
        node.on_message(
            &mut ctx,
            1,
            build_data(vec![Tuple::new(1, 100), Tuple::new(2, 200)]),
        );
        node.on_message(
            &mut ctx,
            1,
            Msg::Data {
                phase: Phase::Probe,
                category: CommCategory::SourceDelivery,
                tuples: vec![Tuple::new(3, 100)].into(),
                tuple_bytes: 116,
            },
        );
        node.on_message(&mut ctx, SCHED, Msg::ReportRequest);
        let snap = registry.snapshot();
        let hist = |name: &str| snap.histograms.get(name).expect(name).clone();
        assert_eq!(hist(names::NODE_BUILD_NS).count, 1);
        assert_eq!(hist(names::NODE_PROBE_NS).count, 1);
        let batches = hist(names::NODE_BATCH_TUPLES);
        assert_eq!(batches.count, 2, "one build batch + one probe batch");
        assert_eq!(batches.max, 2);
        let chains = hist(names::TABLE_CHAIN_LEN);
        assert_eq!(chains.count, 2, "two occupied buckets at report time");
        assert_eq!(
            snap.gauges.get(names::NODE_ARENA_TUPLES).copied(),
            Some(2),
            "occupancy gauge tracks resident tuples by delta"
        );
    }

    #[test]
    fn inserts_owned_tuples_and_forwards_stale_ones() {
        let (mut node, mut ctx) = activated_node(Algorithm::Replicated, 100);
        // Attr 100 → position 100 (ours); attr 700 → position 700 (OTHER's).
        node.on_message(
            &mut ctx,
            1,
            build_data(vec![Tuple::new(1, 100), Tuple::new(2, 700)]),
        );
        assert_eq!(node.resident_tuples(), 1);
        // One DataAck back to the sender plus one forwarded chunk.
        assert!(ctx
            .sent
            .iter()
            .any(|(to, m)| *to == 1 && matches!(m, Msg::DataAck)));
        let data: Vec<_> = ctx
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::Data { .. }))
            .collect();
        assert_eq!(data.len(), 1);
        let (to, msg) = data[0];
        assert_eq!(*to, OTHER);
        match msg {
            Msg::Data {
                phase: Phase::Build,
                category: CommCategory::ReplicaForward,
                tuples,
                ..
            } => assert_eq!(tuples.as_slice(), [Tuple::new(2, 700)]),
            other => panic!("expected forwarded data, got {other:?}"),
        }
    }

    /// Hot-key wrapper over the two-node routing: position 700 (inner says
    /// OTHER) is hot and replicated on both nodes.
    fn hot_routing() -> RoutingTable {
        RoutingTable::HotKeys {
            overlay: crate::routing::HotKeyOverlay {
                hot: vec![700],
                replicas: vec![ME, OTHER],
                extra: Vec::new(),
            },
            inner: Box::new(two_node_routing()),
        }
    }

    #[test]
    fn hot_build_tuples_insert_locally_despite_inner_routing() {
        let (mut node, mut ctx) = activated_node(Algorithm::Replicated, 100);
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::RoutingUpdate {
                routing: hot_routing(),
                version: 2,
            },
        );
        ctx.sent.clear();
        // Attr 700 is hot: even though the inner map homes it on OTHER, a
        // replica keeps it (the hand-off will copy it everywhere later).
        node.on_message(
            &mut ctx,
            1,
            build_data(vec![Tuple::new(1, 700), Tuple::new(2, 100)]),
        );
        assert_eq!(node.resident_tuples(), 2);
        assert!(
            ctx.sent.iter().all(|(_, m)| !matches!(m, Msg::Data { .. })),
            "hot tuple must not be forwarded"
        );
    }

    #[test]
    fn hotkey_plan_copies_hot_tuples_without_removing_them() {
        let (mut node, mut ctx) = activated_node(Algorithm::Replicated, 100);
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::RoutingUpdate {
                routing: hot_routing(),
                version: 2,
            },
        );
        node.on_message(
            &mut ctx,
            1,
            build_data(vec![Tuple::new(1, 700), Tuple::new(2, 100)]),
        );
        ctx.sent.clear();
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::HotKeyPlan {
                positions: vec![700],
                members: vec![ME, OTHER],
            },
        );
        // The original stays resident; a copy ships to the other member.
        assert_eq!(node.resident_tuples(), 2);
        let shipped: Vec<_> = ctx
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::HotKeyData { .. }))
            .collect();
        assert_eq!(shipped.len(), 1);
        let (to, msg) = shipped[0];
        assert_eq!(*to, OTHER);
        match msg {
            Msg::HotKeyData { tuples, .. } => {
                assert_eq!(tuples.as_slice(), [Tuple::new(1, 700)]);
            }
            other => panic!("expected HotKeyData, got {other:?}"),
        }
        assert!(
            ctx.sent
                .iter()
                .any(|(to, m)| *to == SCHED && matches!(m, Msg::HotKeyDone { sent_tuples: 1 })),
            "HotKeyDone must report the shipped copy"
        );
    }

    #[test]
    fn hotkey_data_stashes_until_own_plan_arrives() {
        let (mut node, mut ctx) = activated_node(Algorithm::Replicated, 100);
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::RoutingUpdate {
                routing: hot_routing(),
                version: 2,
            },
        );
        ctx.sent.clear();
        // A peer's copy arrives before our own plan: it must wait, or our
        // extraction would re-ship it and double-count the build side.
        node.on_message(
            &mut ctx,
            OTHER,
            Msg::HotKeyData {
                tuples: vec![Tuple::new(7, 700)].into(),
                tuple_bytes: 116,
            },
        );
        assert_eq!(node.resident_tuples(), 0, "copy stashed, not inserted");
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::HotKeyPlan {
                positions: vec![700],
                members: vec![ME, OTHER],
            },
        );
        assert_eq!(node.resident_tuples(), 1, "stash drains after the plan");
        assert!(ctx
            .sent
            .iter()
            .any(|(to, m)| *to == SCHED && matches!(m, Msg::HotKeyDone { sent_tuples: 0 })));
        // Late copies insert directly once the plan has been seen.
        node.on_message(
            &mut ctx,
            OTHER,
            Msg::HotKeyData {
                tuples: vec![Tuple::new(8, 700)].into(),
                tuple_bytes: 116,
            },
        );
        assert_eq!(node.resident_tuples(), 2);
    }

    #[test]
    fn overflow_raises_memory_full_once() {
        let (mut node, mut ctx) = activated_node(Algorithm::Replicated, 2);
        let tuples: Vec<Tuple> = (0..5).map(|i| Tuple::new(i, 100 + i)).collect();
        node.on_message(&mut ctx, 1, build_data(tuples));
        assert_eq!(node.resident_tuples(), 2);
        assert_eq!(node.pending.len(), 3);
        let fulls: Vec<_> = ctx
            .sent
            .iter()
            .filter(|(to, m)| *to == SCHED && matches!(m, Msg::MemoryFull { .. }))
            .collect();
        assert_eq!(fulls.len(), 1, "exactly one memory-full report");
        // A second overflowing chunk must not re-report while awaiting.
        ctx.sent.clear();
        node.on_message(&mut ctx, 1, build_data(vec![Tuple::new(9, 120)]));
        assert!(ctx
            .sent
            .iter()
            .all(|(_, m)| !matches!(m, Msg::MemoryFull { .. })));
    }

    #[test]
    fn routing_update_forwards_pending_to_new_owner() {
        let (mut node, mut ctx) = activated_node(Algorithm::Replicated, 2);
        let tuples: Vec<Tuple> = (0..5).map(|i| Tuple::new(i, 100 + i)).collect();
        node.on_message(&mut ctx, 1, build_data(tuples));
        ctx.sent.clear();
        // New routing: our whole old range now actively owned by node 12.
        let routing = RoutingTable::Disjoint(RangeMap::partitioned(1000, &[12, OTHER]));
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::RoutingUpdate {
                routing,
                version: 2,
            },
        );
        assert!(node.pending.is_empty());
        assert!(!node.awaiting_relief);
        let forwarded: u64 = ctx
            .sent
            .iter()
            .filter_map(|(to, m)| match m {
                Msg::Data { tuples, .. } if *to == 12 => Some(tuples.len() as u64),
                _ => None,
            })
            .sum();
        assert_eq!(forwarded, 3);
    }

    #[test]
    fn still_full_after_update_reports_again() {
        let (mut node, mut ctx) = activated_node(Algorithm::Split, 2);
        let tuples: Vec<Tuple> = (0..5).map(|i| Tuple::new(i, 100 + i)).collect();
        node.on_message(&mut ctx, 1, build_data(tuples));
        ctx.sent.clear();
        // Routing update that does not move our range: pending stays.
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::RoutingUpdate {
                routing: two_node_routing(),
                version: 2,
            },
        );
        assert_eq!(node.pending.len(), 3);
        assert!(node.awaiting_relief);
        assert!(ctx
            .sent
            .iter()
            .any(|(to, m)| *to == SCHED && matches!(m, Msg::MemoryFull { .. })));
    }

    #[test]
    fn probe_counts_matches_and_compares() {
        let (mut node, mut ctx) = activated_node(Algorithm::Replicated, 100);
        node.on_message(
            &mut ctx,
            1,
            build_data(vec![
                Tuple::new(1, 100),
                Tuple::new(2, 100),
                Tuple::new(3, 105),
            ]),
        );
        node.on_message(
            &mut ctx,
            1,
            Msg::Data {
                phase: Phase::Probe,
                category: CommCategory::SourceDelivery,
                tuples: vec![Tuple::new(9, 100), Tuple::new(10, 101)].into(),
                tuple_bytes: 116,
            },
        );
        assert_eq!(node.matches, 2);
        // Probe 100 scans its 2-element chain; probe 101 hits an empty one.
        assert_eq!(node.compares, 2);
    }

    #[test]
    fn batched_probe_agrees_with_scalar_oracle_and_counts_filter_stats() {
        let build: Vec<Tuple> = (0..40).map(|i| Tuple::new(i, 100 + i % 5)).collect();
        // Half the probes hit the five hot chains, half miss at other
        // positions (filter rejections on the occupied ones).
        let probe: Vec<Tuple> = (0..20)
            .map(|i| Tuple::new(1000 + i, if i % 2 == 0 { 100 + i % 5 } else { 200 + i }))
            .collect();
        let run = |kernel: ProbeKernel| {
            let mut cfg = (*test_cfg(Algorithm::Replicated)).clone();
            cfg.probe_kernel = kernel;
            let cfg = Arc::new(cfg);
            let cap = capacity_tuples(&cfg, 100);
            let mut node = JoinNode::<MemBackend>::new(cfg, SCHED, ME, cap);
            let mut ctx = ScriptCtx::new(ME);
            node.on_message(
                &mut ctx,
                SCHED,
                Msg::Activate {
                    routing: two_node_routing(),
                    version: 1,
                },
            );
            node.on_message(&mut ctx, 1, build_data(build.clone()));
            node.on_message(
                &mut ctx,
                1,
                Msg::Data {
                    phase: Phase::Probe,
                    category: CommCategory::SourceDelivery,
                    tuples: probe.clone().into(),
                    tuple_bytes: 116,
                },
            );
            (
                node.matches,
                node.compares,
                node.filter_probes,
                node.filter_batches,
            )
        };
        let (sm, sc, sfp, sfb) = run(ProbeKernel::Scalar);
        assert_eq!((sfp, sfb), (0, 0), "scalar path keeps no filter stats");
        for kernel in [ProbeKernel::Batched, ProbeKernel::Swar, ProbeKernel::Simd] {
            let (bm, bc, bfp, bfb) = run(kernel);
            assert_eq!((sm, sc), (bm, bc), "{kernel} must match the scalar oracle");
            assert_eq!(bfp, probe.len() as u64, "{kernel} filter probes");
            assert_eq!(bfb, 1, "{kernel} filter batches");
        }
    }

    #[test]
    fn data_before_activation_is_queued() {
        let cfg = test_cfg(Algorithm::Replicated);
        let cap = capacity_tuples(&cfg, 10);
        let mut node = JoinNode::<MemBackend>::new(cfg, SCHED, ME, cap);
        let mut ctx = ScriptCtx::new(ME);
        node.on_message(&mut ctx, 1, build_data(vec![Tuple::new(1, 100)]));
        assert_eq!(node.resident_tuples(), 0);
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::Activate {
                routing: two_node_routing(),
                version: 1,
            },
        );
        assert_eq!(node.resident_tuples(), 1, "boot queue replayed");
    }

    #[test]
    fn split_request_moves_matching_tuples() {
        let (mut node, mut ctx) = activated_node(Algorithm::Split, 100);
        // Identity hashing, positions == domain → position = attr.
        // Bucket 0 covers positions [0,500); its split halves that into
        // [0,250) (stays) and [250,500) (moves to the new bucket).
        for (i, v) in [(1u64, 100u64), (2, 300), (3, 240), (4, 499)] {
            node.on_message(&mut ctx, 1, build_data(vec![Tuple::new(i, v)]));
        }
        ctx.sent.clear();
        let step = SplitStep {
            old: 0,
            new: 2,
            mid: 250,
        };
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::SplitRequest {
                step,
                new_node: OTHER,
            },
        );
        // Positions 300 and 499 move; 100 and 240 stay.
        assert_eq!(node.resident_tuples(), 2);
        let mut moved: Vec<u64> = ctx
            .sent
            .iter()
            .filter_map(|(to, m)| match m {
                Msg::Data { tuples, .. } if *to == OTHER => {
                    Some(tuples.iter().map(|t| t.join_attr).collect::<Vec<_>>())
                }
                _ => None,
            })
            .flatten()
            .collect();
        moved.sort_unstable();
        assert_eq!(moved, vec![300, 499]);
        assert!(ctx.sent.iter().any(|(to, m)| {
            *to == SCHED
                && matches!(
                    m,
                    Msg::SplitDone {
                        moved_tuples: 2,
                        ..
                    }
                )
        }));
    }

    #[test]
    fn range_split_cuts_at_median() {
        let (mut node, mut ctx) = activated_node(Algorithm::Split, 100);
        // 10 tuples at positions 100,110,...,190.
        let tuples: Vec<Tuple> = (0..10).map(|i| Tuple::new(i, 100 + i * 10)).collect();
        node.on_message(&mut ctx, 1, build_data(tuples));
        ctx.sent.clear();
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::RangeSplitRequest {
                new_node: OTHER,
                range: HashRange::new(0, 500),
            },
        );
        let done = ctx
            .sent
            .iter()
            .find_map(|(_, m)| match m {
                Msg::RangeSplitDone {
                    cut,
                    moved_tuples,
                    ok,
                } => Some((*cut, *moved_tuples, *ok)),
                _ => None,
            })
            .expect("must reply");
        assert!(done.2, "split must succeed");
        assert_eq!(done.1, 5, "half the tuples move");
        assert_eq!(node.resident_tuples(), 5);
    }

    #[test]
    fn range_split_on_single_hot_position_fails_gracefully() {
        let (mut node, mut ctx) = activated_node(Algorithm::Split, 100);
        let tuples: Vec<Tuple> = (0..10).map(|i| Tuple::new(i, 100)).collect();
        node.on_message(&mut ctx, 1, build_data(tuples));
        ctx.sent.clear();
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::RangeSplitRequest {
                new_node: OTHER,
                range: HashRange::new(100, 101),
            },
        );
        assert!(ctx
            .sent
            .iter()
            .any(|(_, m)| matches!(m, Msg::RangeSplitDone { ok: false, .. })));
        assert_eq!(node.resident_tuples(), 10);
    }

    #[test]
    fn reshuffle_query_and_plan_roundtrip() {
        let (mut node, mut ctx) = activated_node(Algorithm::Hybrid, 100);
        // Positions 100, 105 and 300 populated.
        node.on_message(
            &mut ctx,
            1,
            build_data(vec![
                Tuple::new(1, 100),
                Tuple::new(2, 105),
                Tuple::new(3, 300),
            ]),
        );
        ctx.sent.clear();
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::ReshuffleQuery {
                group: 0,
                range: HashRange::new(0, 500),
            },
        );
        let hist = ctx
            .sent
            .iter()
            .find_map(|(_, m)| match m {
                Msg::ReshuffleCounts { histogram, .. } => Some(histogram.clone()),
                _ => None,
            })
            .expect("histogram reply");
        assert_eq!(hist.counts.len(), 500);
        assert_eq!(hist.counts[100], 1);
        assert_eq!(hist.counts[105], 1);
        assert_eq!(hist.counts[300], 1);
        ctx.sent.clear();
        // Plan: [0,200) stays ours, [200,500) goes to OTHER.
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::ReshufflePlan {
                group: 0,
                assignments: vec![
                    (HashRange::new(0, 200), ME),
                    (HashRange::new(200, 500), OTHER),
                ],
            },
        );
        assert_eq!(node.resident_tuples(), 2);
        assert!(ctx.sent.iter().any(|(to, m)| *to == OTHER
            && matches!(
                m,
                Msg::Data {
                    phase: Phase::Reshuffle,
                    ..
                }
            )));
        assert!(ctx
            .sent
            .iter()
            .any(|(_, m)| matches!(m, Msg::ReshuffleDone { sent_tuples: 1, .. })));
    }

    #[test]
    fn ooc_node_spills_and_finalizes() {
        let (mut node, mut ctx) = activated_node(Algorithm::OutOfCore, 3);
        let tuples: Vec<Tuple> = (0..10).map(|i| Tuple::new(i, 100 + i % 2)).collect();
        node.on_message(&mut ctx, 1, build_data(tuples));
        assert!(node.spill.is_some(), "baseline must spill, not expand");
        assert!(ctx.disk_written > 0);
        assert!(ctx
            .sent
            .iter()
            .all(|(_, m)| !matches!(m, Msg::MemoryFull { .. })));
        // Probe: 2 tuples matching the two hot attrs.
        node.on_message(
            &mut ctx,
            1,
            Msg::Data {
                phase: Phase::Probe,
                category: CommCategory::SourceDelivery,
                tuples: vec![Tuple::new(50, 100), Tuple::new(51, 101)].into(),
                tuple_bytes: 116,
            },
        );
        ctx.sent.clear();
        node.on_message(&mut ctx, SCHED, Msg::ReportRequest);
        let report = ctx
            .sent
            .iter()
            .find_map(|(_, m)| match m {
                Msg::Report(r) => Some(r.clone()),
                _ => None,
            })
            .expect("node report");
        assert!(report.spilled);
        assert_eq!(report.matches, 10, "5 copies of each probed attr");
        assert_eq!(report.build_tuples, 10);
        assert!(ctx.disk_read > 0);
    }

    #[test]
    fn no_more_nodes_triggers_spill_fallback() {
        let (mut node, mut ctx) = activated_node(Algorithm::Split, 2);
        let tuples: Vec<Tuple> = (0..6).map(|i| Tuple::new(i, 100 + i)).collect();
        node.on_message(&mut ctx, 1, build_data(tuples));
        assert_eq!(node.pending.len(), 4);
        node.on_message(&mut ctx, SCHED, Msg::NoMoreNodes);
        assert!(node.spill.is_some());
        assert!(node.pending.is_empty());
        assert!(!node.awaiting_relief);
    }

    #[test]
    fn flush_ack_reports_counters() {
        let (mut node, mut ctx) = activated_node(Algorithm::Replicated, 100);
        node.on_message(&mut ctx, 1, build_data(vec![Tuple::new(1, 100)]));
        ctx.sent.clear();
        node.on_message(
            &mut ctx,
            SCHED,
            Msg::FlushQuery {
                epoch: 7,
                phase: Phase::Build,
            },
        );
        match &ctx.sent[0].1 {
            Msg::FlushAck {
                epoch,
                recv_chunks,
                fwd_chunks,
                pending,
            } => {
                assert_eq!(*epoch, 7);
                assert_eq!(*recv_chunks, 1);
                assert_eq!(*fwd_chunks, 0);
                assert_eq!(*pending, 0);
            }
            other => panic!("expected ack, got {other:?}"),
        }
    }
}
