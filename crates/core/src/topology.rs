//! Actor wiring for one join run.

use ehj_cluster::NodeId;
use ehj_sim::ActorId;

/// Maps the system's roles onto engine actor ids. The runner registers the
/// scheduler first, then the data sources, then every cluster node's join
/// process (active or not), so ids are dense and predictable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// The scheduler actor (always 0).
    pub scheduler: ActorId,
    /// Data-source actors, in source order.
    pub sources: Vec<ActorId>,
    /// Join-node actors, indexed by [`NodeId`].
    pub nodes: Vec<ActorId>,
}

impl Topology {
    /// Builds the standard wiring for `sources` sources and `nodes` cluster
    /// nodes.
    #[must_use]
    pub fn standard(sources: usize, nodes: usize) -> Self {
        Self::with_base(0, sources, nodes)
    }

    /// Builds the standard wiring shifted to start at actor id `base`:
    /// scheduler at `base`, sources at `base+1..`, nodes after them. This
    /// is how the multi-tenant service namespaces one query's actors — each
    /// admitted query gets a disjoint dense id block, so concurrent
    /// schedulers, sources and join nodes never collide.
    #[must_use]
    pub fn with_base(base: ActorId, sources: usize, nodes: usize) -> Self {
        let scheduler = base;
        let sources: Vec<ActorId> = (base + 1..=base + sources as ActorId).collect();
        let first = base + sources.len() as ActorId + 1;
        let nodes = (first..first + nodes as ActorId).collect();
        Self {
            scheduler,
            sources,
            nodes,
        }
    }

    /// Actor of a cluster node.
    #[must_use]
    pub fn node_actor(&self, node: NodeId) -> ActorId {
        self.nodes[node.0 as usize]
    }

    /// Cluster node of an actor, if it is a join node.
    #[must_use]
    pub fn node_of_actor(&self, actor: ActorId) -> Option<NodeId> {
        let first = *self.nodes.first()?;
        if actor >= first && actor < first + self.nodes.len() as ActorId {
            Some(NodeId(actor - first))
        } else {
            None
        }
    }

    /// Total number of actors.
    #[must_use]
    pub fn actor_count(&self) -> usize {
        1 + self.sources.len() + self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_wiring_is_dense() {
        let t = Topology::standard(3, 5);
        assert_eq!(t.scheduler, 0);
        assert_eq!(t.sources, vec![1, 2, 3]);
        assert_eq!(t.nodes, vec![4, 5, 6, 7, 8]);
        assert_eq!(t.actor_count(), 9);
    }

    #[test]
    fn based_wiring_shifts_the_whole_block() {
        let t = Topology::with_base(10, 2, 3);
        assert_eq!(t.scheduler, 10);
        assert_eq!(t.sources, vec![11, 12]);
        assert_eq!(t.nodes, vec![13, 14, 15]);
        assert_eq!(t.actor_count(), 6);
        assert_eq!(t.node_actor(NodeId(1)), 14);
        assert_eq!(t.node_of_actor(14), Some(NodeId(1)));
        assert_eq!(t.node_of_actor(12), None);
        assert_eq!(t.node_of_actor(16), None);
    }

    #[test]
    fn node_actor_round_trip() {
        let t = Topology::standard(2, 4);
        for i in 0..4u32 {
            let a = t.node_actor(NodeId(i));
            assert_eq!(t.node_of_actor(a), Some(NodeId(i)));
        }
        assert_eq!(t.node_of_actor(0), None);
        assert_eq!(t.node_of_actor(1), None);
        assert_eq!(t.node_of_actor(100), None);
    }
}
