//! The result of one join run.

use crate::config::Algorithm;
use ehj_metrics::{CommCounters, LoadStats, MetricsReport, PhaseTimes, TraceRollup};

/// One noteworthy event during a run, stamped with simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Simulated seconds since the run started.
    pub at_secs: f64,
    /// What happened.
    pub kind: TimelineKind,
}

/// Event kinds recorded on the scheduler's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineKind {
    /// A new join node was recruited (its cluster node id).
    Recruited(u32),
    /// A linear-pointer bucket split completed (the old bucket id).
    SplitDone(u32),
    /// A range-bisect split completed (the cut position).
    RangeSplit(u32),
    /// A node went out of core (its cluster node id).
    Spilled(u32),
    /// The build phase completed.
    BuildDone,
    /// The reshuffle step completed.
    ReshuffleDone,
    /// The probe phase completed (final reports collected).
    ProbeDone,
    /// The hot-key overlay was installed (number of hot positions).
    HotKeysInstalled(u32),
}

impl TimelineKind {
    /// Short human-readable form for log-style rendering.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Self::Recruited(n) => format!("recruited node n{n}"),
            Self::SplitDone(b) => format!("split bucket {b}"),
            Self::RangeSplit(cut) => format!("range split at position {cut}"),
            Self::Spilled(n) => format!("node n{n} went out of core"),
            Self::BuildDone => "build phase complete".to_owned(),
            Self::ReshuffleDone => "reshuffle complete".to_owned(),
            Self::ProbeDone => "probe phase complete".to_owned(),
            Self::HotKeysInstalled(k) => format!("hot-key overlay installed ({k} positions)"),
        }
    }
}

/// Everything the paper's figures plot, for one run of one algorithm.
#[derive(Debug, Clone)]
pub struct JoinReport {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Phase timings (Figures 2, 3, 6–10).
    pub times: PhaseTimes,
    /// Cumulative time spent inside split operations (Figure 5's
    /// "split time"; zero for non-split algorithms).
    pub split_time_secs: f64,
    /// Reshuffle-step duration (Figure 5's "reshuffle time"; equals
    /// `times.reshuffle_secs`).
    pub reshuffle_time_secs: f64,
    /// Aggregated communication counters (Figures 4 and 11 use the extra
    /// build-phase chunks).
    pub comm: CommCounters,
    /// Per-node build-side tuple counts at the end of the run, active nodes
    /// only (Figures 12 and 13).
    pub load: Vec<u64>,
    /// Matching (r, s) pairs found — the correctness invariant.
    pub matches: u64,
    /// Probe-side chain comparisons performed.
    pub compares: u64,
    /// Join nodes allocated before execution.
    pub initial_nodes: usize,
    /// Join nodes holding table data at the end.
    pub final_nodes: usize,
    /// Additional nodes recruited during the build phase.
    pub expansions: u64,
    /// Nodes that spilled to disk (all of them for the baseline when
    /// memory ran out; EHJA nodes only as a last-resort fallback).
    pub spilled_nodes: usize,
    /// Build-side tuples stored across all nodes.
    pub build_tuples: u64,
    /// Probe-side tuples generated.
    pub probe_tuples: u64,
    /// Simulator events processed.
    pub sim_events: u64,
    /// Bytes pushed through the simulated network.
    pub net_bytes: u64,
    /// Bytes moved through simulated disks.
    pub disk_bytes: u64,
    /// Chronological record of expansions, splits, spills and phase
    /// transitions, as observed by the scheduler.
    pub timeline: Vec<TimelineEvent>,
    /// Per-phase / per-node / per-kind structured trace event counts
    /// (empty when tracing is off).
    pub trace: TraceRollup,
    /// Registry snapshot: counters, gauges, and latency/size percentile
    /// tables (empty when metrics are disabled).
    pub metrics: MetricsReport,
}

impl JoinReport {
    /// Load-balance statistics over the per-node loads (Figures 12/13).
    #[must_use]
    pub fn load_stats(&self) -> LoadStats {
        LoadStats::from_counts(&self.load)
    }

    /// Extra build-phase communication in paper chunks (Figure 4/11 y-axis).
    #[must_use]
    pub fn extra_build_chunks(&self) -> u64 {
        self.comm.extra_chunks(ehj_metrics::Phase::Build)
    }

    /// Extra probe-phase communication in paper chunks.
    #[must_use]
    pub fn extra_probe_chunks(&self) -> u64 {
        self.comm.extra_chunks(ehj_metrics::Phase::Probe)
    }

    /// Extra reshuffle communication in paper chunks.
    #[must_use]
    pub fn extra_reshuffle_chunks(&self) -> u64 {
        self.comm.extra_chunks(ehj_metrics::Phase::Reshuffle)
    }

    /// Derived throughput view: `link_bytes_per_sec` is one node's link
    /// bandwidth, `links` the number of transmitting parties (typically
    /// sources + final join nodes).
    #[must_use]
    pub fn throughput(
        &self,
        link_bytes_per_sec: u64,
        links: usize,
    ) -> ehj_metrics::ThroughputSummary {
        ehj_metrics::ThroughputSummary::compute(
            &self.times,
            self.build_tuples,
            self.probe_tuples,
            self.net_bytes,
            link_bytes_per_sec,
            links,
        )
    }
}
