//! The paper's closed-form overhead model (§4.2.4).
//!
//! With bucket size `B` bytes, `M` initial buckets, `K` final buckets,
//! expansion factor `E = K / M` and per-byte network time `t_b`:
//!
//! * split-based overhead: each split ships half a bucket, and reaching
//!   expansion `E` takes `log2(E)` doubling rounds per bucket —
//!   `T_split = log2(E) · (B / 2) · t_b`;
//! * hybrid (reshuffle) overhead: each tuple is re-homed at most once, and
//!   a fraction `(E − 1) / E` of every bucket moves —
//!   `T_hybrid = ((E − 1) / E) · B · t_b`.
//!
//! The split overhead grows with `E` while the hybrid's saturates below
//! `B · t_b`, which is the paper's analytical argument for the hybrid and
//! what Figure 5 measures. [`OverheadModel::crossover_expansion`] locates the expansion
//! factor where split starts losing.

/// Inputs to the §4.2.4 model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Bucket size in bytes (`B`).
    pub bucket_bytes: f64,
    /// Seconds to move one byte across the network (`t_b`).
    pub secs_per_byte: f64,
}

impl OverheadModel {
    /// Model over 100 Mb/s Ethernet (12.5 MB/s).
    #[must_use]
    pub fn fast_ethernet(bucket_bytes: f64) -> Self {
        Self {
            bucket_bytes,
            secs_per_byte: 1.0 / 12_500_000.0,
        }
    }

    /// `T_split(E) = log2(E) · B/2 · t_b` (zero when `E ≤ 1`).
    #[must_use]
    pub fn split_overhead_secs(&self, expansion: f64) -> f64 {
        if expansion <= 1.0 {
            return 0.0;
        }
        expansion.log2() * self.bucket_bytes / 2.0 * self.secs_per_byte
    }

    /// `T_hybrid(E) = (E−1)/E · B · t_b` (zero when `E ≤ 1`).
    #[must_use]
    pub fn hybrid_overhead_secs(&self, expansion: f64) -> f64 {
        if expansion <= 1.0 {
            return 0.0;
        }
        (expansion - 1.0) / expansion * self.bucket_bytes * self.secs_per_byte
    }

    /// The expansion factor above which the split-based overhead exceeds
    /// the hybrid's, found by bisection on `E ∈ (1, limit]`. Returns `None`
    /// if split never loses within the limit.
    #[must_use]
    pub fn crossover_expansion(&self, limit: f64) -> Option<f64> {
        let diff = |e: f64| self.split_overhead_secs(e) - self.hybrid_overhead_secs(e);
        // Split starts below hybrid for E slightly above 1
        // (log2(E)/2 < (E-1)/E near 1... actually compare numerically).
        let mut lo = 1.0 + 1e-9;
        let mut hi = limit;
        if diff(hi) < 0.0 {
            return None;
        }
        if diff(lo) > 0.0 {
            return Some(lo);
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if diff(mid) > 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OverheadModel {
        OverheadModel::fast_ethernet(100.0e6)
    }

    #[test]
    fn no_expansion_no_overhead() {
        let m = model();
        assert_eq!(m.split_overhead_secs(1.0), 0.0);
        assert_eq!(m.hybrid_overhead_secs(1.0), 0.0);
        assert_eq!(m.split_overhead_secs(0.5), 0.0);
    }

    #[test]
    fn split_grows_without_bound_hybrid_saturates() {
        let m = model();
        let s16 = m.split_overhead_secs(16.0);
        let s256 = m.split_overhead_secs(256.0);
        assert!(s256 > s16 * 1.9, "split overhead must keep growing");
        let h16 = m.hybrid_overhead_secs(16.0);
        let h256 = m.hybrid_overhead_secs(256.0);
        let cap = m.bucket_bytes * m.secs_per_byte;
        assert!(
            h16 < cap && h256 < cap,
            "hybrid overhead is capped at B·t_b"
        );
        assert!(h256 - h16 < 0.1 * cap, "hybrid overhead saturates");
    }

    #[test]
    fn split_overhead_doubles_per_squaring() {
        // log2(E²) = 2·log2(E).
        let m = model();
        let a = m.split_overhead_secs(4.0);
        let b = m.split_overhead_secs(16.0);
        assert!((b - 2.0 * a).abs() < 1e-9);
    }

    #[test]
    fn crossover_exists_and_matches_formula() {
        let m = model();
        let e = m.crossover_expansion(1024.0).expect("must cross");
        // At the crossover: log2(E)/2 == (E-1)/E.
        let lhs = e.log2() / 2.0;
        let rhs = (e - 1.0) / e;
        assert!((lhs - rhs).abs() < 1e-6, "E={e}: {lhs} vs {rhs}");
        // log2(E)/2 == (E−1)/E has its positive root at exactly E = 2:
        // doubling the node count once is where split starts losing.
        assert!((e - 2.0).abs() < 1e-6, "crossover at {e}");
    }

    #[test]
    fn paper_claim_split_grows_faster() {
        // "The overhead for the split-based algorithm grows faster than
        // that of the hybrid algorithm as the expansion factor increases."
        let m = model();
        for e in [4.0, 8.0, 16.0, 32.0] {
            let ds = m.split_overhead_secs(e * 2.0) - m.split_overhead_secs(e);
            let dh = m.hybrid_overhead_secs(e * 2.0) - m.hybrid_overhead_secs(e);
            assert!(ds > dh, "at E={e}: split delta {ds} vs hybrid delta {dh}");
        }
    }
}
