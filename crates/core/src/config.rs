//! Join configuration: which algorithm, on what cluster, over which data,
//! with what cost model.

use ehj_cluster::{ClusterSpec, SelectionPolicy};
use ehj_data::{RelationSpec, Schema, DEFAULT_CHUNK_TUPLES};
use ehj_hash::AttrHasher;
pub use ehj_hash::ProbeKernel;
use ehj_sim::{DiskConfig, NetConfig, SimTime};
use ehj_storage::GraceConfig;

/// The four join algorithms compared in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Replication-based EHJA (§4.2.2).
    Replicated,
    /// Split-based EHJA (§4.2.1, Amin et al. / linear hashing).
    Split,
    /// Hybrid EHJA: replicate while building, reshuffle, probe disjoint
    /// (§4.2.3).
    Hybrid,
    /// Non-expanding baseline: spill to local disk and join out of core.
    OutOfCore,
}

impl Algorithm {
    /// All four, in the figures' legend order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Replicated,
        Algorithm::Split,
        Algorithm::Hybrid,
        Algorithm::OutOfCore,
    ];

    /// Legend label used in the paper's figures.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::Replicated => "Replicated",
            Self::Split => "Split",
            Self::Hybrid => "Hybrid",
            Self::OutOfCore => "Out of Core",
        }
    }
}

/// Which bucket the split-based algorithm splits on overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// The paper's linear-hashing discipline: split the bucket at the split
    /// pointer, in order (§4.2.1; Amin et al., Litwin).
    #[default]
    LinearPointer,
    /// Directory-based alternative from the paper's abstract phrasing:
    /// bisect the *overflowing node's own* hash range at its load median.
    /// Ablation only.
    RangeBisect,
}

/// Which relation builds the hash table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildSide {
    /// Build from R, probe with S (the default everywhere in the paper).
    #[default]
    R,
    /// Build from S, probe with R.
    S,
}

/// CPU cost model, calibrated to the paper's Pentium III 933 MHz nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Generating (or scanning) one tuple at a data source.
    pub gen_per_tuple: SimTime,
    /// Hashing + routing one tuple into a source-side chunk buffer.
    pub route_per_tuple: SimTime,
    /// Inserting one tuple into the hash table.
    pub insert_per_tuple: SimTime,
    /// Fixed cost of probing one tuple (hash + chain lookup).
    pub probe_per_tuple: SimTime,
    /// Comparing one chain element during a probe.
    pub probe_per_compare: SimTime,
    /// Emitting one matched pair.
    pub per_match: SimTime,
    /// Per-message handling overhead at a receiving node.
    pub chunk_handling: SimTime,
    /// Instantiating a join process on a freshly recruited node.
    pub recruit_latency: SimTime,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            gen_per_tuple: SimTime::from_nanos(300),
            route_per_tuple: SimTime::from_nanos(150),
            insert_per_tuple: SimTime::from_nanos(800),
            probe_per_tuple: SimTime::from_nanos(500),
            probe_per_compare: SimTime::from_nanos(100),
            per_match: SimTime::from_nanos(200),
            chunk_handling: SimTime::from_micros(50),
            recruit_latency: SimTime::from_millis(50),
        }
    }
}

/// Skew-conscious routing knobs (DESIGN §4i): sources keep space-saving
/// sketches of the build key stream and ship them to the scheduler, which
/// may install a [`RoutingTable::HotKeys`](crate::routing::RoutingTable)
/// overlay replicating the hottest positions' build tuples and
/// round-robining their probes.
///
/// [`HotKeyConfig::default`] is **off**: every existing workload keeps
/// byte-identical observables unless hot-key routing is asked for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotKeyConfig {
    /// Master switch; when false no sketches are kept and no overlay is
    /// ever installed.
    pub enabled: bool,
    /// Counters per source-side sketch (the space-saving `k`).
    pub sketch_capacity: usize,
    /// Minimum observed build tuples (merged across sources) before the
    /// scheduler considers installing the overlay — avoids acting on noise.
    pub min_total: u64,
    /// Install threshold: the hottest key's estimated share of the build
    /// stream must exceed this fraction.
    pub hot_fraction: f64,
    /// At most this many positions are promoted to the hot set.
    pub max_hot: usize,
}

impl Default for HotKeyConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            sketch_capacity: 64,
            min_total: 8192,
            hot_fraction: 0.01,
            max_hot: 32,
        }
    }
}

impl HotKeyConfig {
    /// The default knobs with the master switch on.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Complete description of one join run.
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// Split-bucket selection (split-based algorithm only).
    pub split_policy: SplitPolicy,
    /// New-node selection policy at the scheduler.
    pub selection_policy: SelectionPolicy,
    /// The cluster (node count and per-node hash memory).
    pub cluster: ClusterSpec,
    /// Join nodes allocated before execution starts (the Figure 2/3 axis).
    pub initial_nodes: usize,
    /// Number of data-source processes.
    pub sources: usize,
    /// Relation R.
    pub r: RelationSpec,
    /// Relation S.
    pub s: RelationSpec,
    /// Which relation builds the hash table.
    pub build_side: BuildSide,
    /// Tuples per chunk (the paper uses 10 000).
    pub chunk_tuples: usize,
    /// Global hash-table position count.
    pub positions: u32,
    /// Attribute-to-hash-value function.
    pub hasher: AttrHasher,
    /// CPU cost model.
    pub costs: CostModel,
    /// Network model.
    pub net: NetConfig,
    /// Disk model (out-of-core spills).
    pub disk: DiskConfig,
    /// Out-of-core tuning.
    pub grace: GraceConfig,
    /// Whether a node that cannot be relieved (no potential nodes left, or
    /// an unsplittable hot range) falls back to spilling out of core.
    pub allow_spill_fallback: bool,
    /// Skew-conscious routing knobs (DESIGN §4i; off by default).
    pub hot_keys: HotKeyConfig,
    /// Which probe kernel join nodes run (DESIGN §4g). Every kernel
    /// produces byte-identical simulated observables; they differ only in
    /// host wall-time. The scalar tuple-at-a-time path and the one-chain
    /// batched pipeline are kept as oracles for differential tests;
    /// [`ProbeKernel::Simd`] needs the `simd` cargo feature and falls back
    /// to SWAR elsewhere.
    pub probe_kernel: ProbeKernel,
    /// Scheduling weight of this query's actor group on a shared executor
    /// (multi-tenant service): its share of worker time relative to other
    /// admitted queries under deficit-weighted round-robin. Minimum 1;
    /// ignored by standalone runs, which own the whole pool.
    pub tenant_weight: u64,
    /// Tuples per resumable probe slice. `0` (default) processes each
    /// probe batch whole; a positive value makes long probe batches
    /// preemptible on the threaded executor — the join node parks a
    /// cursor between slices when the scheduler asks it to yield. Slice
    /// accounting is additive, so simulated observables are byte-identical
    /// for any slicing.
    pub probe_slice: usize,
    /// Simulation event budget (safety valve).
    pub max_events: u64,
    /// Optional virtual-time budget for the simulated backend; exceeding it
    /// stops the run and surfaces as a stall diagnostic.
    pub max_sim_time: Option<SimTime>,
}

impl JoinConfig {
    /// Join-attribute domain of the paper workload. Together with the
    /// position count this calibrates the skew behaviour of Figure 10: the
    /// σ = 0.001 Gaussian window (≈ 4σ·2^28 ≈ 2^20 values) *wraps* the
    /// 2^20-position table and spreads evenly ("all algorithms adapt
    /// well"), while the σ = 0.0001 window covers only ~10 % of the
    /// positions and overloads a few join nodes.
    pub const PAPER_ATTR_DOMAIN: u64 = 1 << 28;

    /// Positions per domain value kept fixed across scales so the skew
    /// window always covers the same *fraction* of the table.
    pub const DOMAIN_PER_POSITION: u64 = 256;

    /// The paper's default setup at full scale: OSUMed cluster, 4 initial
    /// join nodes, 8 data sources, R = S = 10M uniform tuples of 116 B.
    #[must_use]
    pub fn paper_default(algorithm: Algorithm) -> Self {
        let seed = 0xE41A_u64 ^ 0x5EED_0001;
        Self {
            algorithm,
            split_policy: SplitPolicy::default(),
            selection_policy: SelectionPolicy::default(),
            cluster: ClusterSpec::osumed(),
            initial_nodes: 4,
            sources: 8,
            r: RelationSpec::uniform(10_000_000, seed).with_domain(Self::PAPER_ATTR_DOMAIN),
            s: RelationSpec::uniform(10_000_000, seed ^ 0x0BAD_CAFE)
                .with_domain(Self::PAPER_ATTR_DOMAIN),
            build_side: BuildSide::default(),
            chunk_tuples: DEFAULT_CHUNK_TUPLES,
            positions: (Self::PAPER_ATTR_DOMAIN / Self::DOMAIN_PER_POSITION) as u32,
            hasher: AttrHasher::Identity,
            costs: CostModel::default(),
            net: NetConfig::fast_ethernet_100mbps(),
            disk: DiskConfig::ide_2004(),
            grace: GraceConfig::default(),
            allow_spill_fallback: true,
            hot_keys: HotKeyConfig::default(),
            probe_kernel: ProbeKernel::default(),
            tenant_weight: 1,
            probe_slice: 0,
            max_events: 500_000_000,
            max_sim_time: None,
        }
    }

    /// The paper's setup scaled down by `scale`: relation sizes, per-node
    /// memory, chunk size and position count all divide by `scale`, which
    /// preserves expansion factors and communication *ratios* while letting
    /// experiments run in seconds.
    ///
    /// # Panics
    /// Panics if `scale == 0`.
    #[must_use]
    pub fn paper_scaled(algorithm: Algorithm, scale: u64) -> Self {
        assert!(scale > 0, "scale must be positive");
        let mut cfg = Self::paper_default(algorithm);
        cfg.r.tuples /= scale;
        cfg.s.tuples /= scale;
        for node in &mut cfg.cluster.nodes {
            node.hash_memory_bytes /= scale;
        }
        cfg.chunk_tuples = (cfg.chunk_tuples as u64 / scale).max(64) as usize;
        // Per-event fixed delays scale with the time axis: chunk counts,
        // expansion counts and message counts stay constant under scaling,
        // so leaving these fixed would let them dominate small-scale runs
        // and distort the algorithm orderings.
        cfg.costs.recruit_latency = cfg.costs.recruit_latency / scale;
        cfg.costs.chunk_handling = cfg.costs.chunk_handling / scale;
        cfg.net.latency = cfg.net.latency / scale;
        cfg.disk.seek = cfg.disk.seek / scale;
        // Scale the attribute domain and the position count together: the
        // skew window's width as a *fraction* of the position space (what
        // drives Figure 10's shape) then stays scale-invariant, as does the
        // duplicate-per-value ratio.
        let domain = (cfg.r.domain / scale).max(Self::DOMAIN_PER_POSITION * 64);
        cfg.r = cfg.r.with_domain(domain);
        cfg.s = cfg.s.with_domain(domain);
        cfg.positions = (domain / Self::DOMAIN_PER_POSITION) as u32;
        cfg
    }

    /// The relation that builds the hash table.
    #[must_use]
    pub fn build_spec(&self) -> &RelationSpec {
        match self.build_side {
            BuildSide::R => &self.r,
            BuildSide::S => &self.s,
        }
    }

    /// The relation that probes the hash table.
    #[must_use]
    pub fn probe_spec(&self) -> &RelationSpec {
        match self.build_side {
            BuildSide::R => &self.s,
            BuildSide::S => &self.r,
        }
    }

    /// The shared row schema.
    #[must_use]
    pub fn schema(&self) -> Schema {
        self.r.schema
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_nodes == 0 {
            return Err("initial_nodes must be at least 1".into());
        }
        if self.initial_nodes > self.cluster.len() {
            return Err(format!(
                "initial_nodes ({}) exceeds cluster size ({})",
                self.initial_nodes,
                self.cluster.len()
            ));
        }
        if self.sources == 0 {
            return Err("need at least one data source".into());
        }
        if self.r.schema != self.s.schema {
            return Err("R and S must share one schema (as in the paper)".into());
        }
        if self.r.domain != self.s.domain {
            return Err("R and S must share one attribute domain".into());
        }
        if self.chunk_tuples == 0 {
            return Err("chunk_tuples must be positive".into());
        }
        if self.positions == 0 {
            return Err("positions must be positive".into());
        }
        if self.tenant_weight == 0 {
            return Err("tenant_weight must be at least 1".into());
        }
        if self.hot_keys.enabled {
            let hk = &self.hot_keys;
            if hk.sketch_capacity == 0 {
                return Err("hot_keys.sketch_capacity must be positive".into());
            }
            if hk.max_hot == 0 {
                return Err("hot_keys.max_hot must be positive".into());
            }
            if hk.max_hot > hk.sketch_capacity {
                return Err(format!(
                    "hot_keys.max_hot ({}) exceeds sketch_capacity ({})",
                    hk.max_hot, hk.sketch_capacity
                ));
            }
            if !(hk.hot_fraction > 0.0 && hk.hot_fraction < 1.0) {
                return Err("hot_keys.hot_fraction must lie in (0, 1)".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let cfg = JoinConfig::paper_default(Algorithm::Hybrid);
        cfg.validate().expect("paper default must validate");
        assert_eq!(cfg.r.tuples, 10_000_000);
        assert_eq!(cfg.schema().tuple_bytes(), 116);
        assert_eq!(cfg.cluster.len(), 24);
    }

    #[test]
    fn scaling_divides_everything() {
        let cfg = JoinConfig::paper_scaled(Algorithm::Split, 100);
        cfg.validate().expect("scaled config must validate");
        assert_eq!(cfg.r.tuples, 100_000);
        assert_eq!(cfg.chunk_tuples, 100);
        assert_eq!(
            cfg.cluster.spec(ehj_cluster::NodeId(0)).hash_memory_bytes,
            96 * 1024 * 1024 / 100
        );
    }

    #[test]
    fn scaling_preserves_expansion_factor() {
        // Tuples-per-node-capacity ratio must be scale-invariant.
        let full = JoinConfig::paper_default(Algorithm::Split);
        let scaled = JoinConfig::paper_scaled(Algorithm::Split, 50);
        let ratio = |c: &JoinConfig| {
            c.r.tuples as f64 / (c.cluster.spec(ehj_cluster::NodeId(0)).hash_memory_bytes as f64)
        };
        assert!((ratio(&full) - ratio(&scaled)).abs() / ratio(&full) < 1e-6);
    }

    #[test]
    fn build_side_selects_relation() {
        let mut cfg = JoinConfig::paper_default(Algorithm::Replicated);
        cfg.r.tuples = 1;
        cfg.s.tuples = 2;
        assert_eq!(cfg.build_spec().tuples, 1);
        assert_eq!(cfg.probe_spec().tuples, 2);
        cfg.build_side = BuildSide::S;
        assert_eq!(cfg.build_spec().tuples, 2);
        assert_eq!(cfg.probe_spec().tuples, 1);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = JoinConfig::paper_default(Algorithm::Split);
        cfg.initial_nodes = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = JoinConfig::paper_default(Algorithm::Split);
        cfg.initial_nodes = 25;
        assert!(cfg.validate().is_err());

        let mut cfg = JoinConfig::paper_default(Algorithm::Split);
        cfg.sources = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = JoinConfig::paper_default(Algorithm::Split);
        cfg.s = cfg.s.with_payload(400);
        assert!(cfg.validate().is_err(), "schema mismatch must fail");

        let mut cfg = JoinConfig::paper_default(Algorithm::Split);
        cfg.s = cfg.s.with_domain(1);
        assert!(cfg.validate().is_err(), "domain mismatch must fail");

        let mut cfg = JoinConfig::paper_default(Algorithm::Split);
        cfg.hot_keys = HotKeyConfig::enabled();
        cfg.hot_keys.max_hot = cfg.hot_keys.sketch_capacity + 1;
        assert!(cfg.validate().is_err(), "max_hot > capacity must fail");
        cfg.hot_keys = HotKeyConfig::enabled();
        cfg.hot_keys.hot_fraction = 1.5;
        assert!(cfg.validate().is_err(), "hot_fraction >= 1 must fail");
        cfg.hot_keys = HotKeyConfig::enabled();
        cfg.validate().expect("enabled defaults must validate");
    }

    #[test]
    fn labels() {
        assert_eq!(Algorithm::Replicated.label(), "Replicated");
        assert_eq!(Algorithm::OutOfCore.label(), "Out of Core");
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        let _ = JoinConfig::paper_scaled(Algorithm::Split, 0);
    }
}
