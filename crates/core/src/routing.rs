//! Routing tables shared by data sources, join nodes and the scheduler.
//!
//! A routing table answers two questions for a join-attribute value:
//! *where do build tuples go* (always exactly one node) and *where do probe
//! tuples go* (one node, except for replicated ranges, which broadcast to
//! every replica — §4.2.2). The three algorithm families use three shapes:
//!
//! * [`RoutingTable::Disjoint`] — contiguous position ranges, one owner
//!   each: the initial configuration, the out-of-core baseline, the
//!   range-bisect split ablation, and the hybrid's post-reshuffle probe
//!   routing;
//! * [`RoutingTable::Replica`] — ranges with replica lists: the
//!   replication-based and hybrid build phases and the replication-based
//!   probe phase;
//! * [`RoutingTable::Buckets`] — linear-hashing buckets: the split-based
//!   algorithm (the `(i, split pointer)` pair the scheduler broadcasts,
//!   §4.2.1).
//!
//! A fourth shape, [`RoutingTable::HotKeys`], is an *overlay* wrapped
//! around any of the three: a short sorted list of hot positions whose
//! build tuples are round-robined across (and later replicated to) a
//! replica set, with probes for those positions round-robined too. Cold
//! positions fall through to the wrapped inner table (DESIGN §4i).

use ehj_data::JoinAttr;
use ehj_hash::{BucketMap, PositionSpace, RangeMap, ReplicaMap};
use ehj_sim::ActorId;

/// The hot-position overlay installed by the scheduler when source-side
/// sketches report heavy hitters (DESIGN §4i).
///
/// During the build phase, a hot tuple goes to exactly **one** replica
/// (round-robin by the caller-supplied ticket) — replication happens once,
/// in a post-barrier hand-off, so each clean replica ends with exactly one
/// copy of every hot build tuple. During the probe phase each hot probe
/// tuple is answered by one replica (round-robin) plus every member of
/// `extra` (spilled nodes whose grace join must still see the tuple).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotKeyOverlay {
    /// Hot hash positions, sorted ascending (binary-searched per tuple).
    pub hot: Vec<u32>,
    /// Nodes sharing the hot build tuples; round-robin targets.
    pub replicas: Vec<ActorId>,
    /// Nodes that additionally receive every hot probe tuple (spilled
    /// members answering from disk). Empty during the build phase.
    pub extra: Vec<ActorId>,
}

impl HotKeyOverlay {
    /// Whether `pos` is one of the replicated hot positions.
    #[must_use]
    pub fn is_hot(&self, pos: u32) -> bool {
        self.hot.binary_search(&pos).is_ok()
    }

    /// The single destination for a hot tuple under round-robin ticket
    /// `ticket` (any monotone per-caller counter).
    #[must_use]
    pub fn pick(&self, ticket: u64) -> ActorId {
        self.replicas[(ticket % self.replicas.len() as u64) as usize]
    }

    /// Appends a hot probe tuple's destinations: one answering replica by
    /// round-robin ticket — when any clean member exists — plus every
    /// spilled extra. With no clean members at all (every participant went
    /// out of core), the extras alone cover the scattered hot build side.
    pub fn push_probe_dests(&self, ticket: u64, out: &mut Vec<ActorId>) {
        if !self.replicas.is_empty() {
            out.push(self.pick(ticket));
        }
        out.extend_from_slice(&self.extra);
    }
}

/// One routing table, versioned by the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingTable {
    /// Disjoint contiguous position ranges.
    Disjoint(RangeMap<ActorId>),
    /// Ranges with replica lists.
    Replica(ReplicaMap<ActorId>),
    /// Linear-hashing bucket map.
    Buckets(BucketMap<ActorId>),
    /// Hot-position overlay over one of the three base shapes.
    HotKeys {
        /// The replicated hot positions and their destinations.
        overlay: HotKeyOverlay,
        /// Base table answering every cold position.
        inner: Box<RoutingTable>,
    },
}

impl RoutingTable {
    /// The single destination for a build tuple.
    #[must_use]
    pub fn build_dest(&self, space: &PositionSpace, attr: JoinAttr) -> ActorId {
        self.build_dest_pos(space.position_of(attr))
    }

    /// [`Self::build_dest`] for a pre-computed hash position, so callers
    /// that also need the position (e.g. to insert into the local table)
    /// hash each attribute exactly once.
    #[must_use]
    pub fn build_dest_pos(&self, pos: u32) -> ActorId {
        match self {
            Self::Disjoint(m) => m.owner_of(pos),
            Self::Replica(m) => m.active_of(pos),
            // Linear hashing subdivides the position space ("disjoint
            // subranges of hash values", §4), so it addresses positions.
            Self::Buckets(m) => m.route(pos as u64),
            // Ticketless callers get a deterministic replica; the source
            // hot path round-robins via `HotKeyOverlay::pick` instead.
            Self::HotKeys { overlay, inner } => {
                if overlay.is_hot(pos) {
                    overlay.pick(pos as u64)
                } else {
                    inner.build_dest_pos(pos)
                }
            }
        }
    }

    /// Appends the probe destinations for a tuple to `out` (cleared first).
    /// Exactly one destination except for replicated ranges.
    pub fn probe_dests(&self, space: &PositionSpace, attr: JoinAttr, out: &mut Vec<ActorId>) {
        self.probe_dests_pos(space.position_of(attr), out);
    }

    /// [`Self::probe_dests`] for a pre-computed hash position.
    pub fn probe_dests_pos(&self, pos: u32, out: &mut Vec<ActorId>) {
        out.clear();
        match self {
            Self::Disjoint(m) => out.push(m.owner_of(pos)),
            Self::Replica(m) => {
                out.extend_from_slice(m.owners_of(pos));
            }
            Self::Buckets(m) => {
                out.push(m.route(pos as u64));
            }
            Self::HotKeys { overlay, inner } => {
                if overlay.is_hot(pos) {
                    overlay.push_probe_dests(pos as u64, out);
                } else {
                    inner.probe_dests_pos(pos, out);
                }
            }
        }
    }

    /// The hot-key overlay, when one is installed.
    #[must_use]
    pub fn overlay(&self) -> Option<&HotKeyOverlay> {
        match self {
            Self::HotKeys { overlay, .. } => Some(overlay),
            _ => None,
        }
    }

    /// The base table a hot-key overlay wraps (self when none is
    /// installed). Algorithm-specific table surgery — replica extension,
    /// bucket splits, range bisection, reshuffle installs — always operates
    /// on the base shape.
    #[must_use]
    pub fn inner(&self) -> &RoutingTable {
        match self {
            Self::HotKeys { inner, .. } => inner,
            other => other,
        }
    }

    /// Mutable [`Self::inner`].
    pub fn inner_mut(&mut self) -> &mut RoutingTable {
        match self {
            Self::HotKeys { inner, .. } => inner,
            other => other,
        }
    }

    /// Whether `node` owns `attr` for the build phase under this table.
    #[must_use]
    pub fn owns_build(&self, space: &PositionSpace, attr: JoinAttr, node: ActorId) -> bool {
        self.build_dest(space, attr) == node
    }

    /// Every node that currently holds (or receives) part of the table.
    #[must_use]
    pub fn all_nodes(&self) -> Vec<ActorId> {
        match self {
            Self::Disjoint(m) => m.owners(),
            Self::Replica(m) => m.all_nodes(),
            Self::Buckets(m) => m.distinct_owners(),
            Self::HotKeys { overlay, inner } => {
                let mut nodes = inner.all_nodes();
                for &n in overlay.replicas.iter().chain(&overlay.extra) {
                    if !nodes.contains(&n) {
                        nodes.push(n);
                    }
                }
                nodes
            }
        }
    }

    /// Approximate on-wire size of a routing broadcast carrying this table.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Self::Disjoint(m) => 16 * m.entries().len() as u64,
            Self::Replica(m) => m
                .entries()
                .iter()
                .map(|e| 12 + 4 * e.owners.len() as u64)
                .sum(),
            Self::Buckets(m) => 16 + 4 * m.bucket_count() as u64,
            Self::HotKeys { overlay, inner } => {
                4 * overlay.hot.len() as u64
                    + 4 * (overlay.replicas.len() + overlay.extra.len()) as u64
                    + inner.wire_bytes()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehj_hash::AttrHasher;

    fn space() -> PositionSpace {
        // positions == domain, so position == attribute value directly.
        PositionSpace::new(100, 100, AttrHasher::Identity)
    }

    #[test]
    fn disjoint_routes_by_range() {
        let t = RoutingTable::Disjoint(RangeMap::partitioned(100, &[10, 11, 12, 13]));
        let sp = space();
        assert_eq!(t.build_dest(&sp, 0), 10);
        assert_eq!(t.build_dest(&sp, 99), 13);
        let mut dests = Vec::new();
        t.probe_dests(&sp, 50, &mut dests);
        assert_eq!(dests, vec![12]);
        assert!(t.owns_build(&sp, 50, 12));
        assert!(!t.owns_build(&sp, 50, 10));
        assert_eq!(t.all_nodes(), vec![10, 11, 12, 13]);
    }

    #[test]
    fn replica_broadcasts_probes_but_unicasts_builds() {
        let mut m = ReplicaMap::partitioned(100, &[10, 11]);
        let _ = m.replicate(11, 12);
        let t = RoutingTable::Replica(m);
        let sp = space();
        // Range [50,100) has owners [11, 12], active 12.
        assert_eq!(t.build_dest(&sp, 80), 12);
        let mut dests = Vec::new();
        t.probe_dests(&sp, 80, &mut dests);
        assert_eq!(dests, vec![11, 12]);
        t.probe_dests(&sp, 10, &mut dests);
        assert_eq!(dests, vec![10], "out must be cleared between calls");
    }

    #[test]
    fn buckets_route_by_linear_hashing() {
        // Position space: 100 positions over domain 1000 (identity).
        let mut m = BucketMap::new(vec![20, 21], 100);
        let _ = m.split(22);
        let t = RoutingTable::Buckets(m);
        let sp = space();
        // Bucket 0 was [0,50) positions; after the split its upper half
        // [25,50) belongs to the new bucket owned by 22.
        assert_eq!(t.build_dest(&sp, 10), 20);
        assert_eq!(t.build_dest(&sp, 30), 22);
        assert_eq!(t.build_dest(&sp, 70), 21);
        let mut dests = Vec::new();
        t.probe_dests(&sp, 30, &mut dests);
        assert_eq!(dests, vec![22]);
    }

    #[test]
    fn pos_based_routing_matches_attr_based() {
        let mut m = ReplicaMap::partitioned(100, &[10, 11]);
        let _ = m.replicate(11, 12);
        let tables = [
            RoutingTable::Disjoint(RangeMap::partitioned(100, &[10, 11, 12, 13])),
            RoutingTable::Replica(m),
            RoutingTable::Buckets(BucketMap::new(vec![20, 21], 100)),
        ];
        let sp = space();
        for t in &tables {
            for attr in [0, 37, 50, 99] {
                let pos = sp.position_of(attr);
                assert_eq!(t.build_dest(&sp, attr), t.build_dest_pos(pos));
                let (mut a, mut b) = (Vec::new(), Vec::new());
                t.probe_dests(&sp, attr, &mut a);
                t.probe_dests_pos(pos, &mut b);
                assert_eq!(a, b);
            }
        }
    }

    fn hot_table() -> RoutingTable {
        RoutingTable::HotKeys {
            overlay: HotKeyOverlay {
                hot: vec![20, 40],
                replicas: vec![10, 11, 12],
                extra: vec![],
            },
            inner: Box::new(RoutingTable::Disjoint(RangeMap::partitioned(
                100,
                &[10, 11, 12, 13],
            ))),
        }
    }

    #[test]
    fn hot_keys_cold_positions_fall_through() {
        let t = hot_table();
        let sp = space();
        let inner = RoutingTable::Disjoint(RangeMap::partitioned(100, &[10, 11, 12, 13]));
        let mut a = Vec::new();
        let mut b = Vec::new();
        for attr in [0u64, 19, 21, 39, 41, 99] {
            assert_eq!(t.build_dest(&sp, attr), inner.build_dest(&sp, attr));
            t.probe_dests(&sp, attr, &mut a);
            inner.probe_dests(&sp, attr, &mut b);
            assert_eq!(a, b, "cold attr {attr} must route like the base table");
        }
    }

    #[test]
    fn hot_keys_hot_positions_route_to_one_replica() {
        let t = hot_table();
        let sp = space();
        let d = t.build_dest(&sp, 20);
        assert!([10, 11, 12].contains(&d));
        let mut dests = Vec::new();
        t.probe_dests(&sp, 40, &mut dests);
        assert_eq!(dests.len(), 1, "no extras: one replica answers the probe");
        assert!([10, 11, 12].contains(&dests[0]));
    }

    #[test]
    fn hot_keys_extras_ride_along_on_probes() {
        let mut t = hot_table();
        if let RoutingTable::HotKeys { overlay, .. } = &mut t {
            overlay.extra = vec![15];
        }
        let sp = space();
        let mut dests = Vec::new();
        t.probe_dests(&sp, 20, &mut dests);
        assert!(dests.contains(&15), "spilled member must see hot probes");
        assert_eq!(dests.len(), 2);
        t.probe_dests(&sp, 21, &mut dests);
        assert_eq!(dests, vec![10], "cold probes skip the extras");
        assert!(t.all_nodes().contains(&15));
    }

    #[test]
    fn hot_keys_inner_accessors_see_through() {
        let mut t = hot_table();
        assert!(t.overlay().is_some());
        assert!(matches!(t.inner(), RoutingTable::Disjoint(_)));
        assert!(matches!(t.inner_mut(), RoutingTable::Disjoint(_)));
        let plain = RoutingTable::Buckets(BucketMap::new(vec![1], 100));
        assert!(plain.overlay().is_none());
        assert!(matches!(plain.inner(), RoutingTable::Buckets(_)));
    }

    #[test]
    fn hot_overlay_round_robin_covers_all_replicas() {
        let o = HotKeyOverlay {
            hot: vec![5],
            replicas: vec![7, 8, 9],
            extra: vec![],
        };
        let picked: Vec<ActorId> = (0..6).map(|t| o.pick(t)).collect();
        assert_eq!(picked, vec![7, 8, 9, 7, 8, 9]);
        assert!(o.is_hot(5));
        assert!(!o.is_hot(6));
    }

    #[test]
    fn wire_bytes_grow_with_structure() {
        let small = RoutingTable::Disjoint(RangeMap::partitioned(100, &[1, 2]));
        let big = RoutingTable::Disjoint(RangeMap::partitioned(100, &[1, 2, 3, 4, 5, 6]));
        assert!(big.wire_bytes() > small.wire_bytes());
        let mut m = ReplicaMap::partitioned(100, &[1, 2]);
        let base = RoutingTable::Replica(m.clone()).wire_bytes();
        let _ = m.replicate(1, 3);
        assert!(RoutingTable::Replica(m).wire_bytes() > base);
    }
}
