//! Routing tables shared by data sources, join nodes and the scheduler.
//!
//! A routing table answers two questions for a join-attribute value:
//! *where do build tuples go* (always exactly one node) and *where do probe
//! tuples go* (one node, except for replicated ranges, which broadcast to
//! every replica — §4.2.2). The three algorithm families use three shapes:
//!
//! * [`RoutingTable::Disjoint`] — contiguous position ranges, one owner
//!   each: the initial configuration, the out-of-core baseline, the
//!   range-bisect split ablation, and the hybrid's post-reshuffle probe
//!   routing;
//! * [`RoutingTable::Replica`] — ranges with replica lists: the
//!   replication-based and hybrid build phases and the replication-based
//!   probe phase;
//! * [`RoutingTable::Buckets`] — linear-hashing buckets: the split-based
//!   algorithm (the `(i, split pointer)` pair the scheduler broadcasts,
//!   §4.2.1).

use ehj_data::JoinAttr;
use ehj_hash::{BucketMap, PositionSpace, RangeMap, ReplicaMap};
use ehj_sim::ActorId;

/// One routing table, versioned by the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingTable {
    /// Disjoint contiguous position ranges.
    Disjoint(RangeMap<ActorId>),
    /// Ranges with replica lists.
    Replica(ReplicaMap<ActorId>),
    /// Linear-hashing bucket map.
    Buckets(BucketMap<ActorId>),
}

impl RoutingTable {
    /// The single destination for a build tuple.
    #[must_use]
    pub fn build_dest(&self, space: &PositionSpace, attr: JoinAttr) -> ActorId {
        self.build_dest_pos(space.position_of(attr))
    }

    /// [`Self::build_dest`] for a pre-computed hash position, so callers
    /// that also need the position (e.g. to insert into the local table)
    /// hash each attribute exactly once.
    #[must_use]
    pub fn build_dest_pos(&self, pos: u32) -> ActorId {
        match self {
            Self::Disjoint(m) => m.owner_of(pos),
            Self::Replica(m) => m.active_of(pos),
            // Linear hashing subdivides the position space ("disjoint
            // subranges of hash values", §4), so it addresses positions.
            Self::Buckets(m) => m.route(pos as u64),
        }
    }

    /// Appends the probe destinations for a tuple to `out` (cleared first).
    /// Exactly one destination except for replicated ranges.
    pub fn probe_dests(&self, space: &PositionSpace, attr: JoinAttr, out: &mut Vec<ActorId>) {
        self.probe_dests_pos(space.position_of(attr), out);
    }

    /// [`Self::probe_dests`] for a pre-computed hash position.
    pub fn probe_dests_pos(&self, pos: u32, out: &mut Vec<ActorId>) {
        out.clear();
        match self {
            Self::Disjoint(m) => out.push(m.owner_of(pos)),
            Self::Replica(m) => {
                out.extend_from_slice(m.owners_of(pos));
            }
            Self::Buckets(m) => {
                out.push(m.route(pos as u64));
            }
        }
    }

    /// Whether `node` owns `attr` for the build phase under this table.
    #[must_use]
    pub fn owns_build(&self, space: &PositionSpace, attr: JoinAttr, node: ActorId) -> bool {
        self.build_dest(space, attr) == node
    }

    /// Every node that currently holds (or receives) part of the table.
    #[must_use]
    pub fn all_nodes(&self) -> Vec<ActorId> {
        match self {
            Self::Disjoint(m) => m.owners(),
            Self::Replica(m) => m.all_nodes(),
            Self::Buckets(m) => m.distinct_owners(),
        }
    }

    /// Approximate on-wire size of a routing broadcast carrying this table.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Self::Disjoint(m) => 16 * m.entries().len() as u64,
            Self::Replica(m) => m
                .entries()
                .iter()
                .map(|e| 12 + 4 * e.owners.len() as u64)
                .sum(),
            Self::Buckets(m) => 16 + 4 * m.bucket_count() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehj_hash::AttrHasher;

    fn space() -> PositionSpace {
        // positions == domain, so position == attribute value directly.
        PositionSpace::new(100, 100, AttrHasher::Identity)
    }

    #[test]
    fn disjoint_routes_by_range() {
        let t = RoutingTable::Disjoint(RangeMap::partitioned(100, &[10, 11, 12, 13]));
        let sp = space();
        assert_eq!(t.build_dest(&sp, 0), 10);
        assert_eq!(t.build_dest(&sp, 99), 13);
        let mut dests = Vec::new();
        t.probe_dests(&sp, 50, &mut dests);
        assert_eq!(dests, vec![12]);
        assert!(t.owns_build(&sp, 50, 12));
        assert!(!t.owns_build(&sp, 50, 10));
        assert_eq!(t.all_nodes(), vec![10, 11, 12, 13]);
    }

    #[test]
    fn replica_broadcasts_probes_but_unicasts_builds() {
        let mut m = ReplicaMap::partitioned(100, &[10, 11]);
        let _ = m.replicate(11, 12);
        let t = RoutingTable::Replica(m);
        let sp = space();
        // Range [50,100) has owners [11, 12], active 12.
        assert_eq!(t.build_dest(&sp, 80), 12);
        let mut dests = Vec::new();
        t.probe_dests(&sp, 80, &mut dests);
        assert_eq!(dests, vec![11, 12]);
        t.probe_dests(&sp, 10, &mut dests);
        assert_eq!(dests, vec![10], "out must be cleared between calls");
    }

    #[test]
    fn buckets_route_by_linear_hashing() {
        // Position space: 100 positions over domain 1000 (identity).
        let mut m = BucketMap::new(vec![20, 21], 100);
        let _ = m.split(22);
        let t = RoutingTable::Buckets(m);
        let sp = space();
        // Bucket 0 was [0,50) positions; after the split its upper half
        // [25,50) belongs to the new bucket owned by 22.
        assert_eq!(t.build_dest(&sp, 10), 20);
        assert_eq!(t.build_dest(&sp, 30), 22);
        assert_eq!(t.build_dest(&sp, 70), 21);
        let mut dests = Vec::new();
        t.probe_dests(&sp, 30, &mut dests);
        assert_eq!(dests, vec![22]);
    }

    #[test]
    fn pos_based_routing_matches_attr_based() {
        let mut m = ReplicaMap::partitioned(100, &[10, 11]);
        let _ = m.replicate(11, 12);
        let tables = [
            RoutingTable::Disjoint(RangeMap::partitioned(100, &[10, 11, 12, 13])),
            RoutingTable::Replica(m),
            RoutingTable::Buckets(BucketMap::new(vec![20, 21], 100)),
        ];
        let sp = space();
        for t in &tables {
            for attr in [0, 37, 50, 99] {
                let pos = sp.position_of(attr);
                assert_eq!(t.build_dest(&sp, attr), t.build_dest_pos(pos));
                let (mut a, mut b) = (Vec::new(), Vec::new());
                t.probe_dests(&sp, attr, &mut a);
                t.probe_dests_pos(pos, &mut b);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn wire_bytes_grow_with_structure() {
        let small = RoutingTable::Disjoint(RangeMap::partitioned(100, &[1, 2]));
        let big = RoutingTable::Disjoint(RangeMap::partitioned(100, &[1, 2, 3, 4, 5, 6]));
        assert!(big.wire_bytes() > small.wire_bytes());
        let mut m = ReplicaMap::partitioned(100, &[1, 2]);
        let base = RoutingTable::Replica(m.clone()).wire_bytes();
        let _ = m.replicate(1, 3);
        assert!(RoutingTable::Replica(m).wire_bytes() > base);
    }
}
