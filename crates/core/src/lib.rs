//! # ehj-core — Expanding Hash-based Join Algorithms
//!
//! A from-scratch reproduction of *"Strategies for Using Additional
//! Resources in Parallel Hash-based Join Algorithms"* (Zhang, Kurc, Pan,
//! Catalyurek, Narayanan, Wyckoff, Saltz — HPDC 2004).
//!
//! The paper compares three adaptive parallel hash-join algorithms that
//! recruit additional cluster nodes when a join node's hash-table memory
//! fills during the build phase — **split-based** (linear hashing, Amin et
//! al.), **replication-based**, and a **hybrid** that replicates while
//! building and then *reshuffles* to a disjoint partitioning before probing
//! — against a non-expanding **out-of-core** baseline.
//!
//! ## Quick start
//!
//! ```
//! use ehj_core::{Algorithm, JoinConfig, JoinRunner};
//!
//! // The paper's setup, scaled down 500x so it runs in milliseconds.
//! let cfg = JoinConfig::paper_scaled(Algorithm::Hybrid, 500);
//! let report = JoinRunner::run(&cfg).expect("join runs");
//! assert!(report.times.total_secs > 0.0);
//! println!(
//!     "{}: {:.2}s total, {} matches, expanded to {} nodes",
//!     report.algorithm.label(),
//!     report.times.total_secs,
//!     report.matches,
//!     report.final_nodes,
//! );
//! ```
//!
//! ## Architecture
//!
//! The system components of §4.1 — a scheduler, data sources and join
//! processes — are actors ([`scheduler::Scheduler`], [`source::DataSource`],
//! [`join_node::JoinNode`]) that run unchanged on either of two runtimes
//! from `ehj-sim`: a deterministic discrete-event simulator with a
//! calibrated model of the paper's 24-node PC cluster (the default), or a
//! threaded runtime over real channels and temp files.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod config;
pub mod join_node;
pub mod msg;
pub mod multiway;
pub mod reference;
pub mod report;
pub mod routing;
pub mod runner;
pub mod scheduler;
pub mod service;
pub mod source;
#[cfg(test)]
pub(crate) mod testutil;
pub mod topology;

pub use analysis::OverheadModel;
pub use config::{
    Algorithm, BuildSide, CostModel, HotKeyConfig, JoinConfig, ProbeKernel, SplitPolicy,
};
pub use msg::{Msg, NodeReport};
pub use multiway::{MultiwayPlan, MultiwayReport};
pub use reference::{expected_matches, expected_matches_for};
pub use report::JoinReport;
pub use routing::RoutingTable;
pub use runner::{Backend, JoinError, JoinRunner, RunOptions};
pub use service::{JoinService, QueryHandle, QueryId, ServiceConfig};
pub use topology::Topology;
