//! The multi-tenant join service: a stream of join queries on one shared
//! executor.
//!
//! [`crate::runner::JoinRunner`] runs one join per call and tears the
//! runtime down afterwards. A [`JoinService`] instead keeps one
//! work-stealing executor alive and **admits** queries onto it as they
//! arrive — mixed algorithms, scales and key distributions, concurrently:
//!
//! * **Namespacing** — every admitted query gets a dense, disjoint actor-id
//!   block ([`Topology::with_base`]), so concurrent schedulers, sources and
//!   join nodes coexist without id collisions, and a query's
//!   [`ehj_sim::Context::stop`] quiesces only its own group.
//! * **Admission control** — a query's demand is the aggregate hash memory
//!   its cluster spec declares; the service's [`QuotaLedger`] blocks
//!   submissions until running queries release enough budget, and rejects
//!   demands no amount of waiting could satisfy.
//! * **Per-query observability** — each query gets its own metrics
//!   registry and trace harness, so its [`JoinReport`] carries rollups
//!   unpolluted by its neighbours (the registries and monitors used to
//!   assume one run per process).
//!
//! For the deterministic backend, [`JoinService::run_interleaved`] runs a
//! batch of queries *interleaved in one simulation* — per-actor NIC, CPU
//! and disk state means disjoint queries do not contend in the cost model,
//! and per-group accounting reproduces each query's standalone report
//! byte for byte (the service-suite test pins this).

use crate::config::JoinConfig;
use crate::report::JoinReport;
use crate::runner::{build_query_actors, Backend, JoinError, RunOptions, TraceHarness};
use crate::topology::Topology;
use ehj_cluster::{QuotaError, QuotaGrant, QuotaLedger};
use ehj_metrics::registry::names;
use ehj_metrics::{
    sample_once, ClockKind, Histogram, MetricsRegistry, MetricsReport, StopCause, TraceLevel,
};
use ehj_sim::{Admission, Engine, EngineConfig, Executor, ExecutorConfig, StopReason};
use ehj_storage::{FileBackend, MemBackend};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::msg::Msg;

/// Identifies one admitted query within a [`JoinService`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Tuning of a [`JoinService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads of the shared executor (`0` = available
    /// parallelism).
    pub workers: usize,
    /// Bounded mailbox capacity per actor.
    pub mailbox_capacity: usize,
    /// Total hash-memory budget arbitrated across concurrent queries;
    /// `None` admits without memory arbitration.
    pub memory_budget_bytes: Option<u64>,
    /// How long one submission may block waiting for quota.
    pub admission_patience: Duration,
    /// Per-query completion deadline in [`JoinService::wait`]; a query
    /// that blows it is cancelled and reported as stalled.
    pub query_deadline: Duration,
    /// Trace level of each query's private harness.
    pub trace_level: TraceLevel,
    /// Whether each query gets a live metrics registry.
    pub metrics: bool,
    /// Latency-targeted admission: refuse (after the admission patience)
    /// submissions whose predicted completion latency — the service's
    /// observed p99 scaled by the post-admission inflight-to-worker ratio
    /// — would exceed this budget. `None` admits on quota alone.
    pub latency_budget: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            mailbox_capacity: 1024,
            memory_budget_bytes: None,
            admission_patience: Duration::from_secs(30),
            query_deadline: Duration::from_secs(120),
            trace_level: TraceLevel::Summary,
            metrics: true,
            latency_budget: None,
        }
    }
}

/// Handle to one admitted query: pass it to [`JoinService::wait`] to
/// collect the query's own [`JoinReport`], or to [`JoinService::cancel`]
/// to quiesce it early.
pub struct QueryHandle {
    /// The query's id (dense, in admission order).
    pub id: QueryId,
    /// First actor id of the query's block (its scheduler).
    pub base_actor: u32,
    admission: Admission,
    result: Arc<Mutex<Option<JoinReport>>>,
    harness: TraceHarness,
    registry: MetricsRegistry,
    cancelled: AtomicBool,
}

/// A long-lived join service: one executor, many concurrent queries.
pub struct JoinService {
    executor: Executor<Msg>,
    quota: Option<QuotaLedger>,
    cfg: ServiceConfig,
    next_query: AtomicU64,
    /// Query-latency histogram feeding latency-targeted admission, minted
    /// from a service-scoped registry (per-query registries stay separate).
    latency: Histogram,
    /// Admitted-but-unfinished query count plus the condvar completions
    /// signal, so a gated submission can re-evaluate its prediction.
    inflight: Arc<(Mutex<usize>, Condvar)>,
}

/// Holds one slot of the service's inflight count for a query's lifetime;
/// dropping it (when the query's group retires) decrements the count and
/// wakes submissions parked on the latency gate.
struct InflightGuard {
    inflight: Arc<(Mutex<usize>, Condvar)>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        let (lock, cv) = &*self.inflight;
        let mut count = lock.lock().expect("inflight gate");
        *count = count.saturating_sub(1);
        cv.notify_all();
    }
}

impl JoinService {
    /// Starts the service's executor pool. Workers park while no query is
    /// running.
    #[must_use]
    pub fn start(cfg: ServiceConfig) -> Self {
        let exec_cfg = ExecutorConfig {
            workers: cfg.workers,
            mailbox_capacity: cfg.mailbox_capacity,
        };
        // Worker-level instruments would mix tenants; per-query registries
        // carry the meaningful (join-side) metrics instead.
        let executor = Executor::start(&exec_cfg, &MetricsRegistry::disabled());
        let quota = cfg.memory_budget_bytes.map(QuotaLedger::new);
        let latency = MetricsRegistry::new()
            .handle()
            .histogram(names::SERVICE_QUERY_LATENCY_NS);
        Self {
            executor,
            quota,
            cfg,
            next_query: AtomicU64::new(0),
            latency,
            inflight: Arc::new((Mutex::new(0), Condvar::new())),
        }
    }

    /// Worker threads in the shared pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.executor.workers()
    }

    /// The service's observed p99 query latency scaled by what the
    /// inflight-to-worker ratio would become if one more query were
    /// admitted — the load model behind latency-targeted admission. Zero
    /// until the first query completes (a cold service admits freely).
    fn predicted_latency_ns(&self, inflight: usize) -> u64 {
        let snap = self.latency.snapshot();
        if snap.count == 0 {
            return 0;
        }
        let p99 = snap.percentile(99.0);
        let workers = self.executor.workers().max(1);
        let load = ((inflight + 1) as f64 / workers as f64).max(1.0);
        (p99 as f64 * load) as u64
    }

    /// Latency-targeted admission: holds the submission until its
    /// predicted latency fits the budget *and* the memory quota is free
    /// (probed without parking, so the prediction is re-evaluated on
    /// every wakeup), or until the admission patience expires.
    fn admit_latency_gated(
        &self,
        demand: u64,
        budget: Duration,
    ) -> Result<(Option<QuotaGrant>, InflightGuard), JoinError> {
        let budget_ns = u64::try_from(budget.as_nanos()).unwrap_or(u64::MAX);
        let deadline = Instant::now() + self.cfg.admission_patience;
        let (lock, cv) = &*self.inflight;
        let mut count = lock.lock().expect("inflight gate");
        loop {
            let predicted = self.predicted_latency_ns(*count);
            if predicted <= budget_ns {
                let grant = match &self.quota {
                    None => None,
                    Some(ledger) => match ledger.try_reserve(demand) {
                        Ok(grant) => Some(grant),
                        Err(e @ QuotaError::Oversized { .. }) => {
                            return Err(JoinError::Admission(e.to_string()));
                        }
                        Err(QuotaError::TimedOut { .. }) => {
                            // Quota held by running queries: park below and
                            // re-probe when a completion signals the gate.
                            let left = deadline.saturating_duration_since(Instant::now());
                            if left.is_zero() {
                                return Err(JoinError::Admission(format!(
                                    "timed out waiting for {demand} bytes under a latency gate"
                                )));
                            }
                            let (guard, _timeout) =
                                cv.wait_timeout(count, left).expect("inflight gate");
                            count = guard;
                            continue;
                        }
                    },
                };
                *count += 1;
                return Ok((
                    grant,
                    InflightGuard {
                        inflight: Arc::clone(&self.inflight),
                    },
                ));
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(JoinError::Admission(format!(
                    "predicted p99 of {predicted}ns exceeds the {budget_ns}ns latency budget \
                     ({count} queries inflight on {} workers)",
                    self.executor.workers()
                )));
            }
            let (guard, _timeout) = cv.wait_timeout(count, left).expect("inflight gate");
            count = guard;
        }
    }

    /// Admits one query: validates its configuration, reserves its memory
    /// quota (blocking up to the admission patience), and starts its
    /// actors on the shared executor with the configuration's scheduling
    /// weight. Returns immediately after admission; the query runs
    /// concurrently with every other admitted query.
    ///
    /// With a [`ServiceConfig::latency_budget`] set, admission also
    /// requires the predicted post-admission p99 to fit the budget; the
    /// submission waits (up to the patience) for running queries to
    /// finish, then is refused.
    ///
    /// # Errors
    /// [`JoinError::Config`] on validation failure, [`JoinError::Admission`]
    /// when the quota cannot be reserved or the latency budget would be
    /// blown.
    pub fn submit(&self, cfg: &JoinConfig) -> Result<QueryHandle, JoinError> {
        cfg.validate().map_err(JoinError::Config)?;
        let demand = cfg.cluster.total_hash_memory_bytes();
        let (grant, inflight) = match self.cfg.latency_budget {
            Some(budget) => {
                let (grant, guard) = self.admit_latency_gated(demand, budget)?;
                (grant, Some(guard))
            }
            None => {
                let grant = match &self.quota {
                    Some(ledger) => Some(
                        ledger
                            .reserve(demand, self.cfg.admission_patience)
                            .map_err(|e| JoinError::Admission(e.to_string()))?,
                    ),
                    None => None,
                };
                (grant, None)
            }
        };
        let id = QueryId(self.next_query.fetch_add(1, Ordering::Relaxed));
        let cfg = Arc::new(cfg.clone());
        let result: Arc<Mutex<Option<JoinReport>>> = Arc::new(Mutex::new(None));
        let opts = RunOptions {
            backend: Backend::Threaded,
            trace_level: self.cfg.trace_level,
            metrics: self.cfg.metrics,
            ..RunOptions::default()
        };
        let harness = TraceHarness::build(&opts, ClockKind::Wall)?;
        let registry = if self.cfg.metrics {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        };
        let count = 1 + cfg.sources + cfg.cluster.len();
        let admission = self.executor.admit_weighted(
            count,
            self.cfg.mailbox_capacity,
            cfg.tenant_weight,
            |base| {
                let topo = Topology::with_base(base, cfg.sources, cfg.cluster.len());
                // Rebase the tracer so the query's trace stays in its own
                // 0-based actor namespace wherever its id block landed.
                let tracer = harness.tracer.rebased(base);
                build_query_actors::<FileBackend>(&cfg, &topo, &result, &tracer, &registry)
            },
        );
        if grant.is_some() || inflight.is_some() {
            // The grant (and inflight slot) frees when the query
            // *completes*, not when the caller reaps the handle — a
            // submitter streaming admissions must not be able to wedge the
            // ledger (or the latency gate) with unreaped handles.
            admission.hold_until_done(Box::new((grant, inflight)));
        }
        Ok(QueryHandle {
            id,
            base_actor: admission.base,
            admission,
            result,
            harness,
            registry,
            cancelled: AtomicBool::new(false),
        })
    }

    /// Cancels a running query: its group quiesces with the documented
    /// stop semantics (enqueued-before delivered, after dropped); other
    /// queries are unaffected. Advisory — a query that completes before
    /// the cancel lands still yields its report.
    pub fn cancel(&self, handle: &QueryHandle) {
        handle.cancelled.store(true, Ordering::Relaxed);
        self.executor.cancel(&handle.admission);
    }

    /// Blocks until the query completes and returns its own report: match
    /// counts, per-query latency, traffic, metrics rollup — all scoped to
    /// this query alone.
    ///
    /// # Errors
    /// [`JoinError::Cancelled`] for a cancelled query,
    /// [`JoinError::Stalled`] / [`JoinError::Protocol`] when the query
    /// quiesced without a report (the deadline cancels it first).
    pub fn wait(&self, handle: QueryHandle) -> Result<JoinReport, JoinError> {
        let outcome = match self
            .executor
            .wait_timeout(&handle.admission, self.cfg.query_deadline)
        {
            Some(o) => o,
            None => {
                // Deadline blown: force the group down, then reap it.
                self.executor.cancel(&handle.admission);
                match self
                    .executor
                    .wait_timeout(&handle.admission, self.cfg.query_deadline)
                {
                    Some(o) => o,
                    None => {
                        return Err(JoinError::Stalled {
                            trace: handle.harness.tail(),
                        })
                    }
                }
            }
        };
        let end = u64::try_from(outcome.elapsed.as_nanos()).unwrap_or(u64::MAX);
        // Feed the admission gate's latency estimate — every completed
        // query counts, reaped or cancelled alike.
        self.latency.record(end);
        let report = handle.result.lock().expect("report lock").take();
        let Some(mut report) = report else {
            handle.harness.finish(end, StopCause::Quiescent, None);
            return Err(if handle.cancelled.load(Ordering::Relaxed) {
                JoinError::Cancelled {
                    trace: handle.harness.tail(),
                }
            } else {
                JoinError::from_silent_end(handle.harness.tail())
            });
        };
        // Wall total and traffic come from the group's own ledger (wire
        // bytes charged per send, timer fires included), not pool totals.
        report.times.total_secs = outcome.elapsed.as_secs_f64();
        report.net_bytes = outcome.net_bytes;
        sample_once(&handle.registry, &handle.harness.tracer, end, 0);
        report.metrics = MetricsReport::from_snapshot(&handle.registry.snapshot());
        handle
            .harness
            .finish(end, StopCause::Completed, Some(&mut report));
        Ok(report)
    }

    /// Submit-and-wait convenience for sequential callers.
    ///
    /// # Errors
    /// See [`JoinService::submit`] and [`JoinService::wait`].
    pub fn run(&self, cfg: &JoinConfig) -> Result<JoinReport, JoinError> {
        let handle = self.submit(cfg)?;
        self.wait(handle)
    }

    /// Stops the workers (running queries are abandoned) and returns the
    /// pool's lifetime totals.
    pub fn shutdown(self) -> ehj_sim::ThreadedSummary {
        self.executor.shutdown()
    }

    /// Runs a batch of queries **interleaved in one deterministic
    /// simulation**: every query's actors are registered up front in
    /// disjoint id blocks (one engine group per query), the event loop
    /// interleaves them, and per-group accounting gives each query a
    /// report identical to what it would get running alone — per-actor
    /// NIC/CPU/disk state means disjoint queries never contend in the
    /// cost model, and relative event order within a query is preserved.
    ///
    /// All queries must share the same net/disk cost model (they model
    /// one cluster).
    ///
    /// # Errors
    /// An outer [`JoinError::Config`] for an invalid or incompatible
    /// batch; per-query errors are returned in the corresponding slot.
    pub fn run_interleaved(
        cfgs: &[JoinConfig],
    ) -> Result<Vec<Result<JoinReport, JoinError>>, JoinError> {
        let Some(first) = cfgs.first() else {
            return Ok(Vec::new());
        };
        for cfg in cfgs {
            cfg.validate().map_err(JoinError::Config)?;
            if cfg.net != first.net || cfg.disk != first.disk {
                return Err(JoinError::Config(
                    "interleaved queries must share the net/disk cost model".to_owned(),
                ));
            }
        }
        let max_time = if cfgs.iter().any(|c| c.max_sim_time.is_none()) {
            None
        } else {
            cfgs.iter().filter_map(|c| c.max_sim_time).max()
        };
        let mut engine: Engine<Msg> = Engine::new(EngineConfig {
            net: first.net,
            disk: first.disk,
            max_events: cfgs
                .iter()
                .map(|c| c.max_events)
                .fold(0u64, u64::saturating_add),
            max_time,
        });
        struct QueryState {
            result: Arc<Mutex<Option<JoinReport>>>,
            harness: TraceHarness,
            registry: MetricsRegistry,
        }
        let mut queries = Vec::with_capacity(cfgs.len());
        let mut base = 0u32;
        for (q, cfg) in cfgs.iter().enumerate() {
            let cfg = Arc::new(cfg.clone());
            let topo = Topology::with_base(base, cfg.sources, cfg.cluster.len());
            base += topo.actor_count() as u32;
            let result: Arc<Mutex<Option<JoinReport>>> = Arc::new(Mutex::new(None));
            let harness = TraceHarness::build(&RunOptions::default(), ClockKind::Virtual)?;
            let registry = MetricsRegistry::new();
            // Rebased tracer: the query's events carry query-relative actor
            // ids, so its rollup is identical to a standalone run's.
            let tracer = harness.tracer.rebased(topo.scheduler);
            for actor in build_query_actors::<MemBackend>(&cfg, &topo, &result, &tracer, &registry)
            {
                engine.add_actor_in_group(actor, q);
            }
            queries.push(QueryState {
                result,
                harness,
                registry,
            });
        }
        let run = engine.run();
        let reports = queries
            .iter()
            .enumerate()
            .map(|(q, state)| {
                let gsum = engine.group_summary(q);
                let end = gsum.end_time.as_nanos();
                if gsum.stopped {
                    let report = state.result.lock().expect("report lock").take();
                    let Some(mut report) = report else {
                        state.harness.finish(end, StopCause::Quiescent, None);
                        return Err(JoinError::from_silent_end(state.harness.tail()));
                    };
                    report.sim_events = gsum.events;
                    report.net_bytes = gsum.net_bytes;
                    report.disk_bytes = gsum.disk_bytes;
                    sample_once(&state.registry, &state.harness.tracer, end, 0);
                    report.metrics = MetricsReport::from_snapshot(&state.registry.snapshot());
                    state
                        .harness
                        .finish(end, StopCause::Completed, Some(&mut report));
                    Ok(report)
                } else {
                    // This query never quiesced: the engine either erred
                    // or ran out of events elsewhere; surface per query.
                    match &run {
                        Err(source) => {
                            state.harness.finish(end, StopCause::EventLimit, None);
                            Err(JoinError::Engine {
                                source: source.clone(),
                                trace: state.harness.tail(),
                            })
                        }
                        Ok(summary) => {
                            let cause = match summary.reason {
                                StopReason::TimeLimit => StopCause::TimeLimit,
                                _ => StopCause::Quiescent,
                            };
                            state.harness.finish(end, cause, None);
                            Err(JoinError::from_silent_end(state.harness.tail()))
                        }
                    }
                }
            })
            .collect();
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use crate::reference::expected_matches_for;
    use ehj_sim::SimTime;

    fn quick(algorithm: Algorithm) -> JoinConfig {
        JoinConfig::paper_scaled(algorithm, 1000)
    }

    #[test]
    fn empty_interleaved_batch_is_fine() {
        let out = JoinService::run_interleaved(&[]).expect("empty batch");
        assert!(out.is_empty());
    }

    #[test]
    fn interleaved_batch_must_share_the_cost_model() {
        let a = quick(Algorithm::Split);
        let mut b = quick(Algorithm::Replicated);
        b.net.latency = SimTime::from_millis(42);
        let err = JoinService::run_interleaved(&[a, b]).unwrap_err();
        assert!(matches!(err, JoinError::Config(_)), "got {err:?}");
    }

    #[test]
    fn interleaved_queries_each_produce_their_own_report() {
        let cfgs = [quick(Algorithm::Split), quick(Algorithm::Replicated)];
        let reports = JoinService::run_interleaved(&cfgs).expect("batch runs");
        assert_eq!(reports.len(), 2);
        for (cfg, report) in cfgs.iter().zip(&reports) {
            let report = report.as_ref().expect("query completed");
            assert_eq!(report.algorithm, cfg.algorithm);
            assert_eq!(report.matches, expected_matches_for(cfg));
            assert!(report.sim_events > 0);
            assert!(report.net_bytes > 0);
        }
    }

    #[test]
    fn oversized_tenants_are_refused_admission() {
        let cfg = quick(Algorithm::Hybrid);
        let service = JoinService::start(ServiceConfig {
            // One byte short of the query's demand: can never be granted.
            memory_budget_bytes: Some(cfg.cluster.total_hash_memory_bytes() - 1),
            ..ServiceConfig::default()
        });
        let err = service.run(&cfg).unwrap_err();
        assert!(matches!(err, JoinError::Admission(_)), "got {err:?}");
        service.shutdown();
    }

    #[test]
    fn service_queries_get_sequential_ids_and_correct_counts() {
        let service = JoinService::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let cfg = quick(Algorithm::Split);
        let h1 = service.submit(&cfg).expect("admitted");
        let h2 = service.submit(&cfg).expect("admitted");
        assert_eq!(h1.id, QueryId(0));
        assert_eq!(h2.id, QueryId(1));
        assert_ne!(h1.base_actor, h2.base_actor, "disjoint id blocks");
        let r1 = service.wait(h1).expect("q0 completes");
        let r2 = service.wait(h2).expect("q1 completes");
        let want = expected_matches_for(&cfg);
        assert_eq!(r1.matches, want);
        assert_eq!(r2.matches, want);
        assert!(r1.times.total_secs > 0.0);
        service.shutdown();
    }

    #[test]
    fn latency_budget_refuses_once_observed_p99_exceeds_it() {
        let service = JoinService::start(ServiceConfig {
            workers: 2,
            // One nanosecond: any real completion blows it.
            latency_budget: Some(Duration::from_nanos(1)),
            admission_patience: Duration::from_millis(50),
            ..ServiceConfig::default()
        });
        let cfg = quick(Algorithm::Hybrid);
        // A cold service has no latency samples yet, so the first query
        // admits freely and seeds the estimate.
        let first = service.run(&cfg).expect("cold service admits");
        assert_eq!(first.matches, expected_matches_for(&cfg));
        // Now the observed p99 is a real (multi-microsecond) latency, far
        // over the 1ns budget: the gate must refuse after the patience.
        let err = match service.submit(&cfg) {
            Ok(_) => panic!("hot service must refuse under a 1ns budget"),
            Err(e) => e,
        };
        let JoinError::Admission(msg) = err else {
            panic!("expected admission refusal, got {err:?}");
        };
        assert!(msg.contains("latency budget"), "unexpected message: {msg}");
        service.shutdown();
    }

    #[test]
    fn weighted_tenants_share_the_pool_and_keep_their_counts() {
        let service = JoinService::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let mut heavy = quick(Algorithm::Split);
        heavy.tenant_weight = 8;
        heavy.probe_slice = 64;
        let light = quick(Algorithm::Replicated);
        let h1 = service.submit(&heavy).expect("admitted");
        let h2 = service.submit(&light).expect("admitted");
        let r1 = service.wait(h1).expect("heavy completes");
        let r2 = service.wait(h2).expect("light completes");
        assert_eq!(r1.matches, expected_matches_for(&heavy));
        assert_eq!(r2.matches, expected_matches_for(&light));
        service.shutdown();
    }

    #[test]
    fn cancel_after_completion_is_advisory() {
        let service = JoinService::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let cfg = quick(Algorithm::Replicated);
        let handle = service.submit(&cfg).expect("admitted");
        // Let the query finish, then cancel: the report must survive.
        service.executor.wait(&handle.admission);
        service.cancel(&handle);
        let report = service.wait(handle).expect("completed before cancel");
        assert_eq!(report.matches, expected_matches_for(&cfg));
        service.shutdown();
    }
}
