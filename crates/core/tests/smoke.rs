//! End-to-end smoke runs of all four algorithms at small scale, printed for
//! calibration. `cargo test -p ehj-core --test smoke -- --nocapture`.

use ehj_core::*;

#[test]
fn all_algorithms_match_reference_at_scale_1000() {
    for alg in Algorithm::ALL {
        let mut cfg = JoinConfig::paper_scaled(alg, 1000);
        cfg.r = cfg.r.with_domain(1 << 16);
        cfg.s = cfg.s.with_domain(1 << 16);
        let expect = expected_matches_for(&cfg);
        let t0 = std::time::Instant::now();
        let r = JoinRunner::run(&cfg).expect("join must complete");
        println!(
            "{:12} total={:8.3}s build={:7.3}s matches={} (expect {}) nodes {}->{} exp={} spill={} xbuild={} xprobe={} events={} wall={:?}",
            alg.label(), r.times.total_secs, r.times.build_secs, r.matches, expect,
            r.initial_nodes, r.final_nodes, r.expansions, r.spilled_nodes,
            r.extra_build_chunks(), r.extra_probe_chunks(), r.sim_events, t0.elapsed()
        );
        assert_eq!(r.matches, expect, "{} must match reference", alg.label());
    }
}

#[test]
fn spill_heavy_builds_still_match_reference() {
    // Build side 5x the cluster's aggregate memory: every algorithm must
    // fall back to disk somewhere and still count every match.
    for alg in Algorithm::ALL {
        let mut cfg = JoinConfig::paper_scaled(alg, 1000);
        cfg.r.tuples = 100_000;
        cfg.s.tuples = 10_000;
        let d = 1 << 14;
        cfg.r = cfg.r.with_domain(d);
        cfg.s = cfg.s.with_domain(d);
        cfg.positions = (d / 4) as u32;
        let expect = expected_matches_for(&cfg);
        let r = JoinRunner::run(&cfg).expect("join must complete");
        println!(
            "spill-heavy {:12} matches={} expect={} spilled={} final={}",
            alg.label(),
            r.matches,
            expect,
            r.spilled_nodes,
            r.final_nodes
        );
        assert_eq!(r.matches, expect, "{} must match reference", alg.label());
        assert!(r.spilled_nodes > 0, "{} should have spilled", alg.label());
    }
}
