use ehj_core::*;
use ehj_data::Distribution;

fn run_line(label: &str, mk: impl Fn(Algorithm) -> JoinConfig) {
    let mut line = format!("{label:28}");
    for alg in Algorithm::ALL {
        let cfg = mk(alg);
        match JoinRunner::run(&cfg) {
            Ok(r) => {
                line += &format!(
                    "  {}={:6.2}s(n{:02},xb{:04},xp{:04},sp{})",
                    match alg {
                        Algorithm::Replicated => "R",
                        Algorithm::Split => "S",
                        Algorithm::Hybrid => "H",
                        Algorithm::OutOfCore => "O",
                    },
                    r.times.total_secs,
                    r.final_nodes,
                    r.extra_build_chunks(),
                    r.extra_probe_chunks(),
                    r.spilled_nodes
                )
            }
            Err(e) => line += &format!("  {alg:?}=ERR({e})"),
        }
    }
    println!("{line}");
}

#[test]
#[ignore = "calibration probe"]
fn fig10_skew() {
    for (name, dist) in [
        ("uniform", Distribution::Uniform),
        ("sigma=0.001", Distribution::gaussian_moderate()),
        ("sigma=0.0001", Distribution::gaussian_extreme()),
    ] {
        run_line(name, |alg| {
            let mut cfg = JoinConfig::paper_scaled(alg, 100);
            cfg.r.dist = dist;
            cfg.s.dist = dist;
            cfg
        });
    }
}

#[test]
#[ignore = "calibration probe"]
fn fig8_build_from_larger() {
    for (name, r_t, s_t) in [
        ("R=10M,S=100M", 100_000u64, 1_000_000u64),
        ("R=100M,S=10M", 1_000_000, 100_000),
    ] {
        run_line(name, |alg| {
            let mut cfg = JoinConfig::paper_scaled(alg, 100);
            cfg.r.tuples = r_t;
            cfg.s.tuples = s_t;
            cfg
        });
    }
}

#[test]
#[ignore = "calibration probe"]
fn fig5_split_vs_reshuffle() {
    for init in [1usize, 2, 4, 8, 16] {
        let mut cfg = JoinConfig::paper_scaled(Algorithm::Split, 100);
        cfg.initial_nodes = init;
        let s = JoinRunner::run(&cfg).unwrap();
        let mut cfg = JoinConfig::paper_scaled(Algorithm::Hybrid, 100);
        cfg.initial_nodes = init;
        let h = JoinRunner::run(&cfg).unwrap();
        println!(
            "init={init:2}  split_time={:6.3}s  reshuffle_time={:6.3}s",
            s.split_time_secs, h.reshuffle_time_secs
        );
    }
}
