use ehj_core::*;

#[test]
#[ignore = "calibration probe; run explicitly"]
fn fig2_shape_at_scale_100() {
    for initial in [1usize, 2, 4, 8, 16] {
        let mut line = format!("init={initial:2}");
        for alg in Algorithm::ALL {
            let mut cfg = JoinConfig::paper_scaled(alg, 100);
            cfg.initial_nodes = initial;
            let r = JoinRunner::run(&cfg).expect("join");
            line += &format!(
                "  {}={:6.2}s(n{:02},x{:04})",
                match alg {
                    Algorithm::Replicated => "R",
                    Algorithm::Split => "S",
                    Algorithm::Hybrid => "H",
                    Algorithm::OutOfCore => "O",
                },
                r.times.total_secs,
                r.final_nodes,
                r.extra_build_chunks()
            );
        }
        println!("{line}");
    }
}
